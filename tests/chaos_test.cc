// Chaos suite: deterministic fault injection, deadlines, cancellation, load
// shedding, and stale-while-revalidate — the engine's degraded modes.
//
// The core assertions, for every injection mix at 1 / 2 / 8 threads:
//   - the engine never hangs (a watchdog aborts the run if it stalls),
//   - the outcome partition holds: executed + coalesced + failures +
//     cache.hits == queries,
//   - every query that *succeeds* under injection is bit-identical to the
//     fault-free run (injection decisions are content-derived, so the failed
//     set is also identical across thread counts).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "engine/query_engine.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

/// Aborts the whole process if the guarded scope outlives `limit` — a hung
/// chaos run must fail loudly instead of wedging the test binary.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit)
      : thread_([this, limit] {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!done_.wait_for(lock, limit, [this] { return disarmed_; })) {
            std::fprintf(stderr, "Watchdog: chaos scope hung for %llds\n",
                         static_cast<long long>(limit.count()));
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    done_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  bool disarmed_ = false;
  std::thread thread_;
};

/// Configures the global injector for one scope; always disarms on exit so a
/// failing assertion cannot leak an armed injector into later tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::Global().Configure(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::Global().Disable(); }
};

/// Deterministic mixed workload touching every kind (st, top-k,
/// reliable-set, distance) with repeated sources so coalescing, the sweep
/// cache, and the scout pass all engage.
std::vector<EngineQuery> ChaosBatch(const UncertainGraph& graph, size_t n) {
  std::vector<EngineQuery> queries;
  const NodeId nodes = graph.num_nodes();
  for (NodeId s = 0; queries.size() < n; ++s) {
    const NodeId a = s % nodes;
    const NodeId b = (s + 7) % nodes;
    if (a == b) continue;
    queries.push_back(EngineQuery::St(a, b));
    queries.push_back(EngineQuery::TopK(a % 6, 5));
    queries.push_back(EngineQuery::ReliableSet(a % 6, 0.25));
    queries.push_back(EngineQuery::Distance(a, b, 3));
  }
  queries.resize(n);
  return queries;
}

EngineOptions ChaosOptions(size_t threads, EstimatorKind kind) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 300;
  options.num_strata = 4;
  options.seed = 20190809;
  return options;
}

struct RunOutcome {
  std::vector<EngineResult> results;
  EngineStatsSnapshot stats;
};

RunOutcome RunChaosBatch(const UncertainGraph& graph,
                         const EngineOptions& options,
                         const std::vector<EngineQuery>& queries) {
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  RunOutcome outcome;
  outcome.results = engine->RunBatch(queries).MoveValue();
  outcome.stats = engine->StatsSnapshot();
  return outcome;
}

/// The engine's outcome-partition invariant: every query resolved exactly
/// one way. Holds in every degraded mode — shed queries never enter
/// `queries`, deadline misses are failures, stale serves are cache hits.
void ExpectPartitionHolds(const EngineStatsSnapshot& stats) {
  EXPECT_EQ(stats.executed + stats.coalesced + stats.failures +
                stats.cache.hits,
            stats.queries)
      << "executed=" << stats.executed << " coalesced=" << stats.coalesced
      << " failures=" << stats.failures << " cache_hits=" << stats.cache.hits
      << " queries=" << stats.queries;
}

void ExpectSameTargets(const EngineResult& a, const EngineResult& b,
                       size_t index) {
  ASSERT_EQ(a.targets.size(), b.targets.size()) << "query " << index;
  for (size_t t = 0; t < a.targets.size(); ++t) {
    EXPECT_EQ(a.targets[t].node, b.targets[t].node) << "query " << index;
    EXPECT_EQ(std::memcmp(&a.targets[t].reliability,
                          &b.targets[t].reliability, sizeof(double)),
              0)
        << "query " << index << " target " << t;
  }
}

/// Successful answers must be bit-identical to the fault-free baseline;
/// failed sets must agree as booleans (messages may differ — "first failure
/// wins" races pick different strata text, but never different queries).
void ExpectDegradedMatchesBaseline(const std::vector<EngineResult>& degraded,
                                   const std::vector<EngineResult>& baseline,
                                   bool expect_same_failed_set) {
  ASSERT_EQ(degraded.size(), baseline.size());
  for (size_t i = 0; i < degraded.size(); ++i) {
    if (degraded[i].ok()) {
      ASSERT_TRUE(baseline[i].ok()) << "query " << i;
      EXPECT_EQ(std::memcmp(&degraded[i].reliability,
                            &baseline[i].reliability, sizeof(double)),
                0)
          << "query " << i;
      EXPECT_EQ(degraded[i].num_samples, baseline[i].num_samples)
          << "query " << i;
      ExpectSameTargets(degraded[i], baseline[i], i);
    } else if (expect_same_failed_set) {
      EXPECT_FALSE(baseline[i].ok()) << "query " << i << ": "
                                     << degraded[i].status;
    }
  }
}

struct PlanSpec {
  const char* name;
  /// Answers can only disappear (failures), never change: when false the
  /// plan's sites are semantically invisible and every query must succeed.
  bool can_fail_queries;
  FaultPlan plan;
};

std::vector<PlanSpec> ChaosPlans() {
  std::vector<PlanSpec> specs;
  {
    FaultPlan plan;
    plan.seed = 0xC0FFEE;
    plan.probability[static_cast<size_t>(FaultSite::kEstimatorFailure)] = 0.25;
    specs.push_back({"estimator_failure", true, plan});
  }
  {
    FaultPlan plan;
    plan.seed = 0xC0FFEE;
    plan.probability[static_cast<size_t>(FaultSite::kInducedLatency)] = 0.5;
    plan.latency_us = 200;
    specs.push_back({"induced_latency", false, plan});
  }
  {
    FaultPlan plan;
    plan.seed = 0xC0FFEE;
    plan.probability[static_cast<size_t>(FaultSite::kAllocFailure)] = 0.7;
    specs.push_back({"alloc_failure", false, plan});
  }
  {
    FaultPlan plan;
    plan.seed = 0xC0FFEE;
    plan.probability[static_cast<size_t>(FaultSite::kPoolReject)] = 0.7;
    specs.push_back({"pool_reject", false, plan});
  }
  {
    FaultPlan plan;
    plan.seed = 0xC0FFEE;
    plan.probability[static_cast<size_t>(FaultSite::kEstimatorFailure)] = 0.2;
    plan.probability[static_cast<size_t>(FaultSite::kInducedLatency)] = 0.3;
    plan.probability[static_cast<size_t>(FaultSite::kAllocFailure)] = 0.5;
    plan.probability[static_cast<size_t>(FaultSite::kPoolReject)] = 0.5;
    plan.latency_us = 100;
    specs.push_back({"all_sites", true, plan});
  }
  return specs;
}

TEST(ChaosTest, EveryInjectionMixEveryThreadCount) {
  Watchdog watchdog(std::chrono::seconds(240));
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<EngineQuery> queries = ChaosBatch(graph, 64);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    // Fault-free baseline (thread count is irrelevant: the engine is
    // deterministic across thread counts by the PR 8 contract). Not every
    // query succeeds even fault-free — BFS Sharing has no
    // distance-constrained support — so comparisons are per-query, never
    // all-ok.
    const RunOutcome baseline =
        RunChaosBatch(graph, ChaosOptions(2, kind), queries);
    for (const EngineResult& result : baseline.results) {
      if (!result.ok()) {
        ASSERT_EQ(result.status.code(), StatusCode::kNotSupported)
            << result.status;
      }
    }
    ExpectPartitionHolds(baseline.stats);

    for (const PlanSpec& spec : ChaosPlans()) {
      SCOPED_TRACE(spec.name);
      std::vector<std::vector<EngineResult>> per_thread_results;
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SCOPED_TRACE(threads);
        ScopedFaultPlan armed(spec.plan);
        const RunOutcome chaos =
            RunChaosBatch(graph, ChaosOptions(threads, kind), queries);
        ExpectPartitionHolds(chaos.stats);
        // Non-failing plans (latency, dropped inserts, pool rejections) are
        // semantically invisible: the failed set must equal the baseline's
        // (its NotSupported queries and nothing else). Failing plans may
        // only *add* failures — whatever succeeds must match bitwise.
        ExpectDegradedMatchesBaseline(chaos.results, baseline.results,
                                      !spec.can_fail_queries);
        if (!spec.can_fail_queries) {
          for (size_t i = 0; i < chaos.results.size(); ++i) {
            EXPECT_EQ(chaos.results[i].ok(), baseline.results[i].ok())
                << "query " << i << " under non-failing plan " << spec.name
                << ": " << chaos.results[i].status;
          }
        }
        per_thread_results.push_back(chaos.results);
      }
      // Content-derived injection keys: the failed *set* is identical at
      // every thread count (messages may differ — compare as booleans).
      for (size_t t = 1; t < per_thread_results.size(); ++t) {
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(per_thread_results[0][i].ok(),
                    per_thread_results[t][i].ok())
              << "query " << i << " diverged between thread counts";
        }
      }
    }
  }
}

TEST(ChaosTest, InjectedFailuresAreDeterministicAcrossRuns) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<EngineQuery> queries = ChaosBatch(graph, 48);
  FaultPlan plan;
  plan.seed = 42;
  plan.probability[static_cast<size_t>(FaultSite::kEstimatorFailure)] = 0.3;

  std::vector<EngineResult> first;
  {
    ScopedFaultPlan armed(plan);
    first = RunChaosBatch(graph, ChaosOptions(4, EstimatorKind::kMonteCarlo),
                          queries)
                .results;
  }
  ScopedFaultPlan armed(plan);
  const std::vector<EngineResult> second =
      RunChaosBatch(graph, ChaosOptions(4, EstimatorKind::kMonteCarlo),
                    queries)
          .results;
  size_t failures = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(first[i].ok(), second[i].ok()) << "query " << i;
    if (!first[i].ok()) ++failures;
  }
  // p=0.3 over 48 queries: statistically certain to inject at least once —
  // a zero would mean the injector never engaged.
  EXPECT_GT(failures, 0u);
}

TEST(ChaosTest, DisabledInjectorIsBitIdenticalToNeverCompiledIn) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.9, 5);
  const std::vector<EngineQuery> queries = ChaosBatch(graph, 32);
  const RunOutcome a =
      RunChaosBatch(graph, ChaosOptions(4, EstimatorKind::kMonteCarlo),
                    queries);
  // Arm and disarm: a stale plan must leave zero residue.
  {
    FaultPlan plan;
    plan.seed = 7;
    plan.probability[static_cast<size_t>(FaultSite::kEstimatorFailure)] = 1.0;
    ScopedFaultPlan armed(plan);
  }
  const RunOutcome b =
      RunChaosBatch(graph, ChaosOptions(4, EstimatorKind::kMonteCarlo),
                    queries);
  ExpectDegradedMatchesBaseline(a.results, b.results,
                                /*expect_same_failed_set=*/true);
  EXPECT_EQ(FaultInjector::Global().total_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation
// ---------------------------------------------------------------------------

TEST(ChaosTest, ExpiredDeadlineFailsWithoutPoisoningTheCache) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  auto engine = QueryEngine::Create(
                    graph, ChaosOptions(2, EstimatorKind::kMonteCarlo))
                    .MoveValue();

  // A deadline so tight it has always already expired when the worker picks
  // the query up (the clock starts at Submit).
  std::vector<EngineQuery> doomed = ChaosBatch(graph, 16);
  for (EngineQuery& query : doomed) query.deadline_ms = 1e-6;
  const std::vector<EngineResult> expired =
      engine->RunBatch(doomed).MoveValue();
  for (size_t i = 0; i < expired.size(); ++i) {
    EXPECT_FALSE(expired[i].ok()) << "query " << i;
    EXPECT_EQ(expired[i].status.code(), StatusCode::kDeadlineExceeded)
        << "query " << i << ": " << expired[i].status;
  }
  const EngineStatsSnapshot after_expiry = engine->StatsSnapshot();
  ExpectPartitionHolds(after_expiry);
  EXPECT_EQ(after_expiry.deadline_exceeded, doomed.size());

  // kDeadlineExceeded is transient: it must never have entered the negative
  // cache, so the same queries without deadlines succeed — bit-identical to
  // a fresh engine that never saw a deadline.
  const std::vector<EngineQuery> clean = ChaosBatch(graph, 16);
  const std::vector<EngineResult> retried =
      engine->RunBatch(clean).MoveValue();
  const RunOutcome reference = RunChaosBatch(
      graph, ChaosOptions(2, EstimatorKind::kMonteCarlo), clean);
  ASSERT_EQ(retried.size(), reference.results.size());
  for (size_t i = 0; i < retried.size(); ++i) {
    ASSERT_TRUE(retried[i].ok()) << "query " << i << ": "
                                 << retried[i].status;
    EXPECT_EQ(std::memcmp(&retried[i].reliability,
                          &reference.results[i].reliability, sizeof(double)),
              0)
        << "query " << i;
    ExpectSameTargets(retried[i], reference.results[i], i);
  }
  ExpectPartitionHolds(engine->StatsSnapshot());
}

TEST(ChaosTest, GenerousDeadlineIsBitIdenticalToNoDeadline) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<EngineQuery> queries = ChaosBatch(graph, 48);
  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    const RunOutcome plain = RunChaosBatch(graph, ChaosOptions(4, kind),
                                           queries);
    EngineOptions with_deadline = ChaosOptions(4, kind);
    with_deadline.default_deadline_ms = 60'000.0;
    const RunOutcome guarded = RunChaosBatch(graph, with_deadline, queries);
    for (size_t i = 0; i < queries.size(); ++i) {
      // A 60s deadline never fires on a millisecond query: outcomes (and
      // every bit of every answer) must match the deadline-free run —
      // including BFS Sharing's NotSupported distance failures.
      ASSERT_EQ(guarded.results[i].ok(), plain.results[i].ok())
          << "query " << i << ": " << guarded.results[i].status;
      if (!guarded.results[i].ok()) continue;
      EXPECT_EQ(std::memcmp(&guarded.results[i].reliability,
                            &plain.results[i].reliability, sizeof(double)),
                0)
          << "query " << i;
      ExpectSameTargets(guarded.results[i], plain.results[i], i);
    }
    ExpectPartitionHolds(guarded.stats);
    EXPECT_EQ(guarded.stats.deadline_exceeded, 0u);
  }
}

TEST(ChaosTest, PreCancelledTokenFailsEveryQueryImmediately) {
  Watchdog watchdog(std::chrono::seconds(60));
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.2, 0.9, 5);
  auto engine = QueryEngine::Create(
                    graph, ChaosOptions(2, EstimatorKind::kMonteCarlo))
                    .MoveValue();
  CancelToken token;
  token.Cancel();
  std::vector<EngineQuery> queries = ChaosBatch(graph, 8);
  for (EngineQuery& query : queries) query.cancel = &token;
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled)
        << "query " << i << ": " << results[i].status;
  }
  ExpectPartitionHolds(engine->StatsSnapshot());
}

TEST(ChaosTest, CallerCancelMidStreamDrainsCleanly) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.1, 0.9, 23);
  EngineOptions options = ChaosOptions(2, EstimatorKind::kMonteCarlo);
  options.num_samples = 60'000;  // slow enough for the cancel to land mid-run
  options.enable_cache = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  CancelToken token;
  for (NodeId s = 0; s < 16; ++s) {
    EngineQuery query = EngineQuery::St(s, (s + 9) % 30);
    query.cancel = &token;
    ASSERT_TRUE(engine->Submit(query).ok());
  }
  token.Cancel();
  const std::vector<EngineResult> results = engine->Drain().MoveValue();
  ASSERT_EQ(results.size(), 16u);
  // Cooperative and all-or-nothing: every query either finished with a full
  // answer before the cancel landed, or reports kCancelled — never a torn
  // in-between.
  for (const EngineResult& result : results) {
    if (!result.ok()) {
      EXPECT_EQ(result.status.code(), StatusCode::kCancelled)
          << result.status;
    }
  }
  ExpectPartitionHolds(engine->StatsSnapshot());
}

TEST(ChaosTest, EngineDestructionMidStreamNeverHangs) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.1, 0.9, 23);
  EngineOptions options = ChaosOptions(4, EstimatorKind::kMonteCarlo);
  options.num_samples = 20'000;
  options.enable_cache = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  for (NodeId s = 0; s < 24; ++s) {
    ASSERT_TRUE(engine->Submit(EngineQuery::St(s, (s + 9) % 30)).ok());
  }
  // No Drain: the destructor must retire every in-flight slot itself (the
  // stream results are engine-owned, so there is nothing to use-after-free).
  engine.reset();
}

// ---------------------------------------------------------------------------
// Load shedding
// ---------------------------------------------------------------------------

TEST(ChaosTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.1, 0.9, 23);
  EngineOptions options = ChaosOptions(1, EstimatorKind::kMonteCarlo);
  options.num_samples = 40'000;  // slow queries: the queue builds up
  options.enable_load_shedding = true;
  options.shed_queue_depth = 2;
  options.enable_cache = false;
  options.enable_sweep_cache = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  size_t admitted = 0;
  size_t shed = 0;
  for (NodeId s = 0; s < 64; ++s) {
    const Status status = engine->Submit(EngineQuery::St(s % 30, (s + 9) % 30));
    if (status.ok()) {
      ++admitted;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kUnavailable) << status;
      // The hint tells the client when to retry.
      EXPECT_NE(status.message().find("retry after"), std::string::npos)
          << status;
      ++shed;
    }
  }
  const std::vector<EngineResult> results = engine->Drain().MoveValue();
  EXPECT_EQ(results.size(), admitted);
  EXPECT_GT(shed, 0u) << "a 1-thread engine fed 64 slow queries must shed";
  const EngineStatsSnapshot stats = engine->StatsSnapshot();
  EXPECT_EQ(stats.shed, shed);
  // Shed queries never entered the engine: the partition covers exactly the
  // admitted ones.
  EXPECT_EQ(stats.queries, admitted);
  ExpectPartitionHolds(stats);
  for (const EngineResult& result : results) {
    EXPECT_TRUE(result.ok()) << result.status;
  }
}

// ---------------------------------------------------------------------------
// Stale-while-revalidate
// ---------------------------------------------------------------------------

TEST(ChaosTest, StaleWhileRevalidateServesThenRefreshes) {
  Watchdog watchdog(std::chrono::seconds(120));
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  EngineOptions options = ChaosOptions(2, EstimatorKind::kMonteCarlo);
  options.cache_ttl = 0.15;
  options.max_stale_seconds = 30.0;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  const std::vector<EngineQuery> queries = {EngineQuery::St(0, 7),
                                            EngineQuery::TopK(3, 5)};
  const std::vector<EngineResult> first =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& result : first) {
    ASSERT_TRUE(result.ok()) << result.status;
    EXPECT_FALSE(result.served_stale);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(250));  // expire TTL

  const std::vector<EngineResult> stale =
      engine->RunBatch(queries).MoveValue();
  for (size_t i = 0; i < stale.size(); ++i) {
    ASSERT_TRUE(stale[i].ok()) << stale[i].status;
    EXPECT_TRUE(stale[i].served_stale) << "query " << i;
    // Content determinism: the stale answer is bit-identical to the fresh
    // one (staleness is a TTL fact, not a value fact).
    EXPECT_EQ(std::memcmp(&stale[i].reliability, &first[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i;
    ExpectSameTargets(stale[i], first[i], i);
  }
  const EngineStatsSnapshot stats = engine->StatsSnapshot();
  EXPECT_GT(stats.stale_served, 0u);
  ExpectPartitionHolds(stats);

  // The stale serve kicked off a background refresh; once it lands, the
  // same queries serve fresh again.
  bool refreshed = false;
  for (int attempt = 0; attempt < 100 && !refreshed; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::vector<EngineResult> again =
        engine->RunBatch(queries).MoveValue();
    refreshed = true;
    for (size_t i = 0; i < again.size(); ++i) {
      ASSERT_TRUE(again[i].ok()) << again[i].status;
      if (again[i].served_stale) refreshed = false;
      EXPECT_EQ(std::memcmp(&again[i].reliability, &first[i].reliability,
                            sizeof(double)),
                0)
          << "payload drifted across refresh, query " << i;
      ExpectSameTargets(again[i], first[i], i);
    }
  }
  EXPECT_TRUE(refreshed) << "background refresh never landed";
  ExpectPartitionHolds(engine->StatsSnapshot());
}

}  // namespace
}  // namespace relcomp
