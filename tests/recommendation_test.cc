#include "eval/recommendation.h"

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(PaperRatings, RecursiveMethodsLeadVarianceTrailMemory) {
  // Table 17's key shape: RHH/RSS 4-star variance but 1-star memory.
  for (EstimatorKind kind :
       {EstimatorKind::kRecursive, EstimatorKind::kRecursiveStratified}) {
    const StarRatings r = PaperRatings(kind);
    EXPECT_EQ(r.variance, 4);
    EXPECT_EQ(r.running_time, 4);
    EXPECT_EQ(r.memory, 1);
  }
}

TEST(PaperRatings, McBestMemoryWorstVariance) {
  const StarRatings r = PaperRatings(EstimatorKind::kMonteCarlo);
  EXPECT_EQ(r.memory, 4);
  EXPECT_EQ(r.variance, 1);
}

TEST(PaperRatings, BfsSharingIsSlowest) {
  EXPECT_EQ(PaperRatings(EstimatorKind::kBfsSharing).running_time, 1);
}

TEST(PaperRatings, AllSixAccuracyComparable) {
  // Section 3.4: no common winner in accuracy; Table 17 gives 3-4 stars.
  for (EstimatorKind kind : TheSixEstimators()) {
    EXPECT_GE(PaperRatings(kind).accuracy, 3) << EstimatorKindName(kind);
  }
}

TEST(RatingsTable, RendersAllSix) {
  const std::string table = RatingsTable();
  for (EstimatorKind kind : TheSixEstimators()) {
    EXPECT_NE(table.find(EstimatorKindName(kind)), std::string::npos);
  }
  EXPECT_NE(table.find("****"), std::string::npos);
}

TEST(Recommend, MemoryConstrainedFastPrefersProbTree) {
  ScenarioConstraints constraints;
  constraints.memory_constrained = true;
  constraints.need_fast_queries = true;
  const Recommendation rec = RecommendEstimator(constraints);
  ASSERT_FALSE(rec.estimators.empty());
  EXPECT_EQ(rec.estimators.front(), EstimatorKind::kProbTree);
  EXPECT_NE(rec.explanation.find("memory=smaller"), std::string::npos);
}

TEST(Recommend, AmpleMemoryLowVariancePrefersRecursive) {
  ScenarioConstraints constraints;
  constraints.memory_constrained = false;
  constraints.need_low_variance = true;
  const Recommendation rec = RecommendEstimator(constraints);
  ASSERT_GE(rec.estimators.size(), 2u);
  EXPECT_EQ(rec.estimators[0], EstimatorKind::kRecursiveStratified);
  EXPECT_EQ(rec.estimators[1], EstimatorKind::kRecursive);
}

TEST(Recommend, AmpleMemoryVarianceInsensitiveMentionsBfsSharingCaveat) {
  ScenarioConstraints constraints;
  constraints.memory_constrained = false;
  constraints.need_low_variance = false;
  const Recommendation rec = RecommendEstimator(constraints);
  ASSERT_FALSE(rec.estimators.empty());
  EXPECT_EQ(rec.estimators.front(), EstimatorKind::kBfsSharing);
  EXPECT_NE(rec.explanation.find("4x slower"), std::string::npos);
}

TEST(Recommend, MemoryConstrainedSlowOkIncludesMc) {
  ScenarioConstraints constraints;
  constraints.memory_constrained = true;
  constraints.need_fast_queries = false;
  const Recommendation rec = RecommendEstimator(constraints);
  EXPECT_EQ(rec.estimators.front(), EstimatorKind::kMonteCarlo);
}

}  // namespace
}  // namespace relcomp
