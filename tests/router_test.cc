#include "engine/router.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

// ---------------------------------------------------------------------------
// RouterModel: name round-trip, JSON profile, prior ordering
// ---------------------------------------------------------------------------

TEST(RouterModelTest, KindNameRoundTrips) {
  for (EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing,
        EstimatorKind::kProbTree, EstimatorKind::kLazyPropagationPlus,
        EstimatorKind::kRecursive, EstimatorKind::kRecursiveStratified}) {
    EstimatorKind parsed;
    ASSERT_TRUE(EstimatorKindFromName(EstimatorKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EstimatorKind parsed;
  EXPECT_FALSE(EstimatorKindFromName("NoSuchBackend", &parsed));
}

TEST(RouterModelTest, FromJsonParsesTournamentProfile) {
  const char* json = R"({
    "dataset": "lastfm",
    "backends": [
      {"kind": "MC", "converged_k": 500,
       "curve": [{"k": 250, "seconds": 1.0e-3, "variance": 2.0e-4},
                 {"k": 500, "seconds": 2.0e-3, "variance": 1.0e-4}]},
      {"kind": "FutureBackend", "curve": [{"k": 1, "seconds": 1}]},
      {"kind": "BFSSharing", "converged_k": 250,
       "curve": [{"k": 250, "seconds": 4.0e-3, "variance": 1.5e-4}]}
    ]
  })";
  Result<RouterModel> model = RouterModel::FromJson(json);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE(model->Has(EstimatorKind::kMonteCarlo));
  EXPECT_TRUE(model->Has(EstimatorKind::kBfsSharing));
  EXPECT_EQ(model->profiles().size(), 2u);  // unknown backend skipped

  // At a measured point, interpolation is exact.
  EXPECT_DOUBLE_EQ(model->PredictSeconds(EstimatorKind::kMonteCarlo, 250), 1.0e-3);
  // Midpoint lerp between the two curve points.
  EXPECT_DOUBLE_EQ(model->PredictSeconds(EstimatorKind::kMonteCarlo, 375), 1.5e-3);
  // Beyond the last point: linear extrapolation along the last segment.
  EXPECT_DOUBLE_EQ(model->PredictSeconds(EstimatorKind::kMonteCarlo, 750), 3.0e-3);
  // Below the first point: proportional through-the-origin scaling.
  EXPECT_DOUBLE_EQ(model->PredictSeconds(EstimatorKind::kMonteCarlo, 125), 0.5e-3);
  // Variance interpolates the same way.
  EXPECT_DOUBLE_EQ(model->PredictVariance(EstimatorKind::kMonteCarlo, 500), 1.0e-4);
  // Unprofiled kind: 0 (the "no curve" sentinel).
  EXPECT_EQ(model->PredictSeconds(EstimatorKind::kProbTree, 500), 0.0);
}

TEST(RouterModelTest, FromJsonRejectsMalformedAndEmptyProfiles) {
  EXPECT_FALSE(RouterModel::FromJson("not json at all").ok());
  EXPECT_FALSE(RouterModel::FromJson("{\"backends\": 7}").ok());
  EXPECT_FALSE(RouterModel::FromJson("[1, 2, 3]").ok());
  // Parsable but no usable backend.
  EXPECT_FALSE(RouterModel::FromJson("{\"backends\": []}").ok());
  EXPECT_FALSE(
      RouterModel::FromJson(
          "{\"backends\": [{\"kind\": \"Unknown\", \"curve\": []}]}")
          .ok());
}

TEST(RouterModelTest, DefaultPriorOrdersBackendsByHints) {
  GraphFeatures graph;
  graph.num_nodes = 100;
  graph.num_edges = 400;
  graph.avg_out_degree = 4.0;
  graph.mean_edge_prob = 0.5;
  BackendCapabilities cheap;
  cheap.kind = EstimatorKind::kBfsSharing;
  cheap.hints.per_sample_edge_cost = 0.25;
  BackendCapabilities expensive;
  expensive.kind = EstimatorKind::kLazyPropagation;
  expensive.hints.per_sample_edge_cost = 1.5;
  const RouterModel model =
      RouterModel::Default({cheap, expensive}, graph, RouterOptions{});
  EXPECT_LT(model.PredictSeconds(EstimatorKind::kBfsSharing, 1000),
            model.PredictSeconds(EstimatorKind::kLazyPropagation, 1000));
  EXPECT_GT(model.PredictSeconds(EstimatorKind::kBfsSharing, 1000), 0.0);
}

// ---------------------------------------------------------------------------
// EstimatorRouter: decision levers, determinism, fallback latch
// ---------------------------------------------------------------------------

std::vector<BackendCapabilities> McOnlyCandidates() {
  BackendCapabilities mc;
  mc.kind = EstimatorKind::kMonteCarlo;
  mc.source_sweep = true;
  mc.stratified_sweep = true;
  mc.distance = true;
  return {mc};
}

GraphFeatures SmallGraphFeatures() {
  GraphFeatures graph;
  graph.num_nodes = 100;
  graph.num_edges = 300;
  graph.avg_out_degree = 3.0;
  graph.mean_edge_prob = 0.5;
  return graph;
}

TEST(EstimatorRouterTest, BudgetLeverRespectsEqualAccuracyBounds) {
  obs::MetricsRegistry registry;
  RouterStaticConfig config;
  config.kind = EstimatorKind::kMonteCarlo;
  config.num_samples = 1000;
  config.num_strata = 1;
  RouterOptions options;
  const RouterModel model = RouterModel::Default(
      McOnlyCandidates(), SmallGraphFeatures(), options);
  EstimatorRouter router(model, options, config, SmallGraphFeatures(),
                         McOnlyCandidates(), /*num_threads=*/4, &registry);

  // Nearly-isolated source: eps tiny, so the equal-accuracy cut floors at
  // min_budget.
  QueryFeatures trapped;
  trapped.workload = WorkloadKind::kSt;
  trapped.out_degree = 1;
  trapped.escape_prob = 0.01;
  const QueryPlan cut = router.Decide(trapped);
  EXPECT_TRUE(cut.routed);
  EXPECT_GE(cut.num_samples, options.min_budget);
  EXPECT_LT(cut.num_samples, config.num_samples);

  // Well-connected source: eps >= 1/2 keeps the full static budget.
  QueryFeatures connected;
  connected.workload = WorkloadKind::kSt;
  connected.out_degree = 8;
  connected.escape_prob = 0.9;
  const QueryPlan full = router.Decide(connected);
  EXPECT_EQ(full.num_samples, config.num_samples);

  // Decisions are memoized pure functions of the quantized features.
  const QueryPlan repeat = router.Decide(trapped);
  EXPECT_EQ(repeat.kind, cut.kind);
  EXPECT_EQ(repeat.num_samples, cut.num_samples);
  EXPECT_EQ(repeat.num_strata, cut.num_strata);
  EXPECT_EQ(router.decisions(), 3u);
  EXPECT_EQ(router.fallbacks(), 0u);
}

TEST(EstimatorRouterTest, IncapableStaticKindRoutesToCapableCandidate) {
  obs::MetricsRegistry registry;
  RouterStaticConfig config;
  config.kind = EstimatorKind::kProbTree;  // no sweep, no distance support
  config.num_samples = 1000;
  BackendCapabilities prob_tree;
  prob_tree.kind = EstimatorKind::kProbTree;
  std::vector<BackendCapabilities> candidates = {prob_tree,
                                                 McOnlyCandidates()[0]};
  RouterOptions options;
  const RouterModel model =
      RouterModel::Default(candidates, SmallGraphFeatures(), options);
  EstimatorRouter router(model, options, config, SmallGraphFeatures(),
                         candidates, /*num_threads=*/2, &registry);

  QueryFeatures sweep;
  sweep.workload = WorkloadKind::kTopK;
  sweep.out_degree = 4;
  sweep.escape_prob = 0.8;
  const QueryPlan plan = router.Decide(sweep);
  EXPECT_EQ(plan.kind, EstimatorKind::kMonteCarlo);
  EXPECT_TRUE(plan.routed);

  QueryFeatures distance;
  distance.workload = WorkloadKind::kDistance;
  distance.out_degree = 4;
  distance.escape_prob = 0.8;
  distance.param = 3;
  EXPECT_EQ(router.Decide(distance).kind, EstimatorKind::kMonteCarlo);
}

TEST(EstimatorRouterTest, SweepPlansIgnoreWorkloadTagAndParam) {
  obs::MetricsRegistry registry;
  RouterStaticConfig config;
  config.kind = EstimatorKind::kMonteCarlo;
  config.num_samples = 800;
  RouterOptions options;
  const RouterModel model = RouterModel::Default(
      McOnlyCandidates(), SmallGraphFeatures(), options);
  EstimatorRouter router(model, options, config, SmallGraphFeatures(),
                         McOnlyCandidates(), /*num_threads=*/4, &registry);

  QueryFeatures top_k;
  top_k.workload = WorkloadKind::kTopK;
  top_k.out_degree = 6;
  top_k.escape_prob = 0.7;
  top_k.param = 5;
  QueryFeatures reliable_set = top_k;
  reliable_set.workload = WorkloadKind::kReliableSet;
  reliable_set.param = 0;

  const QueryPlan a = router.Decide(top_k);
  const QueryPlan b = router.Decide(reliable_set);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.num_strata, b.num_strata);
  EXPECT_LE(a.num_strata, options.max_strata);
}

TEST(EstimatorRouterTest, ForcedRegressionTripsStickyFallbackLatch) {
  obs::MetricsRegistry registry;
  RouterStaticConfig config;
  config.kind = EstimatorKind::kMonteCarlo;
  config.num_samples = 1000;
  RouterOptions options;
  options.fallback_gate = 0.0;          // every observation "regresses"
  options.fallback_min_observations = 1;
  options.fallback_min_seconds = 0.0;
  const RouterModel model = RouterModel::Default(
      McOnlyCandidates(), SmallGraphFeatures(), options);
  EstimatorRouter router(model, options, config, SmallGraphFeatures(),
                         McOnlyCandidates(), /*num_threads=*/2, &registry);

  QueryFeatures features;
  features.workload = WorkloadKind::kSt;
  features.out_degree = 4;
  features.escape_prob = 0.8;
  const QueryPlan routed = router.Decide(features);
  ASSERT_TRUE(routed.routed);
  ASSERT_GT(routed.predicted_seconds, 0.0);
  EXPECT_FALSE(router.fallback_engaged());

  router.RecordObserved(routed, /*observed_seconds=*/1.0);
  EXPECT_TRUE(router.fallback_engaged());

  const QueryPlan after = router.Decide(features);
  EXPECT_TRUE(after.fallback);
  EXPECT_FALSE(after.routed);
  EXPECT_EQ(after.kind, config.kind);
  EXPECT_EQ(after.num_samples, config.num_samples);
  EXPECT_EQ(router.fallbacks(), 1u);
  // Latch is sticky: a healthy later observation cannot disengage it.
  router.RecordObserved(routed, 1.0);
  EXPECT_TRUE(router.fallback_engaged());
  // The ISSUE-specified instruments exist and carry the counts.
  EXPECT_EQ(registry.GetCounter("router_fallbacks")->Value(), 1u);
  EXPECT_GE(registry
                .GetCounter("router_decisions", "kind",
                            EstimatorKindName(EstimatorKind::kMonteCarlo))
                ->Value(),
            2u);
}

// ---------------------------------------------------------------------------
// QueryEngine integration: seed/key folding, determinism matrix, router-off
// byte-identity, fallback metric
// ---------------------------------------------------------------------------

std::vector<EngineQuery> MixedWorkload(const UncertainGraph& graph) {
  std::vector<EngineQuery> queries;
  const NodeId n = static_cast<NodeId>(graph.num_nodes());
  for (NodeId s = 0; s < n && queries.size() < 48; ++s) {
    queries.push_back(EngineQuery::St(s, (s + 3) % n));
    if (s % 3 == 0) queries.push_back(EngineQuery::TopK(s, 4));
    if (s % 3 == 1) queries.push_back(EngineQuery::ReliableSet(s, 0.3));
    if (s % 4 == 0) {
      queries.push_back(EngineQuery::Distance(s, (s + 5) % n, 3));
    }
  }
  return queries;
}

EngineOptions RoutedOptions(size_t threads, bool cache) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = EstimatorKind::kMonteCarlo;
  options.num_samples = 400;
  options.num_strata = 2;
  options.seed = 20190410;
  options.enable_cache = cache;
  options.enable_router = true;
  return options;
}

void ExpectSameResults(const std::vector<EngineResult>& a,
                       const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ok(), b[i].ok()) << "query " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "query " << i;
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i;
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size()) << "query " << i;
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node);
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0);
    }
    EXPECT_EQ(a[i].plan.kind, b[i].plan.kind) << "query " << i;
    EXPECT_EQ(a[i].plan.num_samples, b[i].plan.num_samples) << "query " << i;
    EXPECT_EQ(a[i].plan.num_strata, b[i].plan.num_strata) << "query " << i;
  }
}

TEST(RouterEngineTest, RoutedAnswersBitIdenticalAcrossThreadsAndCaches) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.2, 0.9, 11);
  const std::vector<EngineQuery> queries = MixedWorkload(graph);

  std::vector<std::vector<EngineResult>> runs;
  for (size_t threads : {1u, 2u, 8u}) {
    for (bool cache : {true, false}) {
      auto engine =
          QueryEngine::Create(graph, RoutedOptions(threads, cache)).MoveValue();
      runs.push_back(engine->RunBatch(queries).MoveValue());
    }
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    ExpectSameResults(runs[0], runs[i]);
  }
  // At least one query actually ran under a routing decision.
  bool any_routed = false;
  for (const EngineResult& result : runs[0]) {
    if (result.plan.routed) any_routed = true;
  }
  EXPECT_TRUE(any_routed);
}

TEST(RouterEngineTest, RouterOffReproducesLegacySeedsByteForByte) {
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.3, 0.8, 7);
  EngineOptions options = RoutedOptions(2, /*cache=*/true);
  options.enable_router = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  ASSERT_EQ(engine->router(), nullptr);

  // The pre-router derivation, reproduced literally: sweep kinds fold
  // (sweep tag, source, kind, K); st / distance fold the query content then
  // (kind, K). No num_strata fold — that only exists under the router.
  const EngineQuery st = EngineQuery::St(1, 5);
  uint64_t expected = HashWorkloadQuery(options.seed, st);
  expected = HashCombineSeed(expected, static_cast<uint64_t>(options.kind));
  expected = HashCombineSeed(expected, options.num_samples);
  EXPECT_EQ(engine->QuerySeed(st), expected);

  const EngineQuery top_k = EngineQuery::TopK(3, 4);
  uint64_t sweep = HashCombineSeed(options.seed, 0x73776570ULL);
  sweep = HashCombineSeed(sweep, top_k.source);
  sweep = HashCombineSeed(sweep, static_cast<uint64_t>(options.kind));
  sweep = HashCombineSeed(sweep, options.num_samples);
  EXPECT_EQ(engine->QuerySeed(top_k), sweep);
  EXPECT_EQ(engine->SweepSeed(top_k.source), sweep);

  // Router-off plans echo the static knobs.
  const QueryPlan plan = engine->PlanFor(st);
  EXPECT_FALSE(plan.routed);
  EXPECT_EQ(plan.kind, options.kind);
  EXPECT_EQ(plan.num_samples, options.num_samples);
  EXPECT_EQ(plan.num_strata, options.num_strata);
}

TEST(RouterEngineTest, RoutedSeedsFoldThePlanNotTheStaticKnobs) {
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.3, 0.8, 7);
  auto engine =
      QueryEngine::Create(graph, RoutedOptions(2, /*cache=*/true)).MoveValue();
  ASSERT_NE(engine->router(), nullptr);

  const EngineQuery st = EngineQuery::St(2, 9);
  const QueryPlan plan = engine->PlanFor(st);
  uint64_t expected = HashWorkloadQuery(20190410, st);
  expected = HashCombineSeed(expected, static_cast<uint64_t>(plan.kind));
  expected = HashCombineSeed(expected, plan.num_samples);
  expected = HashCombineSeed(expected, plan.num_strata);
  EXPECT_EQ(engine->QuerySeed(st), expected);

  // Sweep-kind queries over one source share one plan and one seed whatever
  // their k / eta — the sweep-sharing contract survives routing.
  EXPECT_EQ(engine->QuerySeed(EngineQuery::TopK(4, 2)),
            engine->QuerySeed(EngineQuery::ReliableSet(4, 0.7)));
  const QueryPlan sweep_a = engine->PlanFor(EngineQuery::TopK(4, 2));
  const QueryPlan sweep_b = engine->PlanFor(EngineQuery::ReliableSet(4, 0.7));
  EXPECT_EQ(sweep_a.kind, sweep_b.kind);
  EXPECT_EQ(sweep_a.num_samples, sweep_b.num_samples);
  EXPECT_EQ(sweep_a.num_strata, sweep_b.num_strata);

  // The executed result reports the plan it ran under and its derived seed.
  const auto results = engine->RunBatch(std::vector<EngineQuery>{st}).MoveValue();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].seed, expected);
  EXPECT_EQ(results[0].plan.kind, plan.kind);
  EXPECT_EQ(results[0].plan.num_samples, plan.num_samples);
}

TEST(RouterEngineTest, RouterEnablesSweepWorkloadsOnIncapableStaticKind) {
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.3, 0.8, 7);
  EngineOptions options = RoutedOptions(2, /*cache=*/true);
  options.kind = EstimatorKind::kProbTree;  // cannot answer top-k itself

  // Router off: the sweep workload fails with NotSupported.
  EngineOptions off = options;
  off.enable_router = false;
  auto static_engine = QueryEngine::Create(graph, off).MoveValue();
  const auto failed =
      static_engine->RunBatch(std::vector<EngineQuery>{EngineQuery::TopK(3, 4)})
          .MoveValue();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_FALSE(failed[0].ok());

  // Router on: the plan routes onto the capable MC candidate and succeeds.
  auto routed_engine = QueryEngine::Create(graph, options).MoveValue();
  const auto ok =
      routed_engine->RunBatch(std::vector<EngineQuery>{EngineQuery::TopK(3, 4)})
          .MoveValue();
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].ok()) << ok[0].status;
  EXPECT_EQ(ok[0].plan.kind, EstimatorKind::kMonteCarlo);
  EXPECT_TRUE(ok[0].plan.routed);
  EXPECT_EQ(ok[0].targets.size(), 4u);
}

TEST(RouterEngineTest, ForcedRegressionExercisesRouterFallbacksMetric) {
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.3, 0.8, 7);
  EngineOptions options = RoutedOptions(2, /*cache=*/true);
  options.router.fallback_gate = 0.0;  // every executed query "regresses"
  options.router.fallback_min_observations = 1;
  options.router.fallback_min_seconds = 0.0;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  // First batch: the first executed routed query trips the sticky latch.
  std::vector<EngineQuery> first;
  for (NodeId s = 0; s < 8; ++s) first.push_back(EngineQuery::St(s, s + 8));
  ASSERT_TRUE(engine->RunBatch(first).ok());
  EXPECT_TRUE(engine->router()->fallback_engaged());

  // Second batch: every decision is now served by the fallback.
  std::vector<EngineQuery> second;
  for (NodeId s = 8; s < 12; ++s) second.push_back(EngineQuery::St(s, s - 8));
  const auto results = engine->RunBatch(second).MoveValue();
  for (const EngineResult& result : results) {
    EXPECT_TRUE(result.plan.fallback);
    EXPECT_EQ(result.plan.kind, options.kind);
    EXPECT_EQ(result.plan.num_samples, options.num_samples);
  }
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_GE(snapshot.router_fallbacks, second.size());
  EXPECT_GE(snapshot.router_decisions,
            static_cast<uint64_t>(first.size() + second.size()));
}

TEST(RouterEngineTest, CreateRejectsMalformedRouterProfile) {
  const UncertainGraph graph = RandomSmallGraph(10, 20, 0.3, 0.8, 3);
  EngineOptions options = RoutedOptions(1, /*cache=*/true);
  options.router_profile_json = "{\"backends\": [";
  EXPECT_FALSE(QueryEngine::Create(graph, options).ok());
}

TEST(RouterEngineTest, CreateAcceptsTournamentShapedProfile) {
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.3, 0.8, 7);
  EngineOptions options = RoutedOptions(2, /*cache=*/true);
  options.router_profile_json = R"({
    "dataset": "test", "workload": "st",
    "backends": [
      {"kind": "MC", "converged_k": 500,
       "curve": [{"k": 250, "seconds": 1e-4, "variance": 2e-4},
                 {"k": 1000, "seconds": 4e-4, "variance": 5e-5}]}
    ]
  })";
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  ASSERT_NE(engine->router(), nullptr);
  EXPECT_TRUE(engine->router()->model().Has(EstimatorKind::kMonteCarlo));
  const auto results =
      engine->RunBatch(std::vector<EngineQuery>{EngineQuery::St(1, 6)})
          .MoveValue();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

}  // namespace
}  // namespace relcomp
