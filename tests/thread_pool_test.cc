#include "engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4, 16);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3, 8);
  std::mutex mutex;
  std::set<size_t> ids;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&](size_t worker_id) {
                      std::lock_guard<std::mutex> lock(mutex);
                      ids.insert(worker_id);
                    })
                    .ok());
  }
  pool.Wait();
  ASSERT_FALSE(ids.empty());
  for (size_t id : ids) EXPECT_LT(id, 3u);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  // Queue of 2 with slow tasks: Submit must block rather than grow the
  // queue, and every task must still run exactly once.
  ThreadPool pool(2, 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&count](size_t) {
                      std::this_thread::sleep_for(std::chrono::microseconds(200));
                      ++count;
                    })
                    .ok());
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0, 0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.queue_capacity(), 1u);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 4);
  pool.Shutdown();
  const Status status = pool.Submit([](size_t) {});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1, 64);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.Submit([&count](size_t) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(100));
                        ++count;
                      })
                      .ok());
    }
    // Destructor shuts down; queued tasks must still run.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(4, 8);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

}  // namespace
}  // namespace relcomp
