#include "engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4, 16);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3, 8);
  std::mutex mutex;
  std::set<size_t> ids;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&](size_t worker_id) {
                      std::lock_guard<std::mutex> lock(mutex);
                      ids.insert(worker_id);
                    })
                    .ok());
  }
  pool.Wait();
  ASSERT_FALSE(ids.empty());
  for (size_t id : ids) EXPECT_LT(id, 3u);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  // Queue of 2 with slow tasks: Submit must block rather than grow the
  // queue, and every task must still run exactly once.
  ThreadPool pool(2, 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&count](size_t) {
                      std::this_thread::sleep_for(std::chrono::microseconds(200));
                      ++count;
                    })
                    .ok());
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0, 0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.queue_capacity(), 1u);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 4);
  pool.Shutdown();
  const Status status = pool.Submit([](size_t) {});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1, 64);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.Submit([&count](size_t) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(100));
                        ++count;
                      })
                      .ok());
    }
    // Destructor shuts down; queued tasks must still run.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(4, 8);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit([&count](size_t) { ++count; }).ok());
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, QueueDepthTracksQueuedNotRunning) {
  ThreadPool pool(1, 16);
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.Submit([&gate](size_t) {
                    std::lock_guard<std::mutex> wait(gate);
                  })
                  .ok());
  // The blocker is *running*, not queued; the next submissions queue.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Submit([](size_t) {}).ok());
  }
  // The blocker may still be in the queue for an instant; only the 4 behind
  // it are guaranteed queued.
  EXPECT_GE(pool.queue_depth(), 4u);
  gate.unlock();
  pool.Wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, ShutdownWithInFlightAndQueuedWorkNeverHangs) {
  // Sweep-flight shape: a long-running in-flight task plus a queue of
  // follow-ups, shut down mid-stride. The pool contract is drain-then-join:
  // every accepted task runs exactly once, no task is dropped, and nothing
  // the tasks touch is freed under them (the counters outlive the pool).
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  {
    ThreadPool pool(2, 64);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.Submit([&started, &finished](size_t) {
                        ++started;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        ++finished;
                      })
                      .ok());
    }
    pool.Shutdown();  // explicit, with most tasks still queued
    // Idempotent: the destructor's implicit Shutdown must be a no-op.
    pool.Shutdown();
    EXPECT_EQ(pool.Submit([](size_t) {}).code(),
              StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(started.load(), 32);
  EXPECT_EQ(finished.load(), 32);
}

TEST(ThreadPoolTest, ConcurrentShutdownAndSubmitIsSafe) {
  // Races Shutdown against a producer thread mid-Submit: whatever interleaves,
  // every Submit either lands (and runs) or reports FailedPrecondition —
  // and the pool never hangs or double-runs a task. Run under TSan/ASan in
  // the sanitizer CI job.
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    auto pool = std::make_unique<ThreadPool>(2, 8);
    std::thread producer([&pool, &ran, &accepted] {
      for (int i = 0; i < 64; ++i) {
        if (pool->Submit([&ran](size_t) { ++ran; }).ok()) {
          ++accepted;
        } else {
          break;  // shutdown won the race
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    pool->Shutdown();
    producer.join();
    pool.reset();
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

}  // namespace
}  // namespace relcomp
