#include "reliability/bfs_sharing.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "reliability/mc_sampling.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

std::unique_ptr<BfsSharingEstimator> Make(const UncertainGraph& g, uint32_t l,
                                          uint64_t seed = 1) {
  BfsSharingOptions options;
  options.index_samples = l;
  Result<std::unique_ptr<BfsSharingEstimator>> r =
      BfsSharingEstimator::Create(g, options, seed);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.MoveValue();
}

TEST(BfsSharing, MatchesClosedFormOnLine) {
  const UncertainGraph g = LineGraph3(0.5, 0.5);
  auto est = Make(g, 20000);
  EstimateOptions opts;
  opts.num_samples = 20000;
  EXPECT_NEAR(est->Estimate({0, 2}, opts)->reliability, 0.25,
              SamplingTolerance(0.25, 20000));
}

TEST(BfsSharing, HandlesCyclesViaCascadingUpdates) {
  // 0 -> 1 -> 2 -> 1 cycle plus 2 -> 3: cascading updates must converge and
  // agree with the exact value.
  const UncertainGraph g =
      GraphFromString("0 1 0.8\n1 2 0.8\n2 1 0.8\n2 3 0.8\n");
  const double exact = *ExactReliabilityEnumeration(g, 0, 3);
  auto est = Make(g, 30000);
  EstimateOptions opts;
  opts.num_samples = 30000;
  EXPECT_NEAR(est->Estimate({0, 3}, opts)->reliability, exact,
              SamplingTolerance(exact, 30000));
}

TEST(BfsSharing, BidirectedDenseGraphAgreesWithExact) {
  // Bidirected graphs maximize cascading-update pressure.
  GraphBuilder b(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) {
      if ((u + v) % 2 == 0) b.AddBidirectedEdge(u, v, 0.3).CheckOK();
    }
  }
  const UncertainGraph g = b.Build().MoveValue();
  const double exact = *ExactReliabilityEnumeration(g, 0, 4);
  auto est = Make(g, 30000);
  EstimateOptions opts;
  opts.num_samples = 30000;
  EXPECT_NEAR(est->Estimate({0, 4}, opts)->reliability, exact,
              SamplingTolerance(exact, 30000));
}

TEST(BfsSharing, DeterministicForFixedIndex) {
  const UncertainGraph g = RandomSmallGraph(20, 60, 0.2, 0.8, 31);
  auto est = Make(g, 1000);
  EstimateOptions opts;
  opts.num_samples = 1000;
  const double r1 = est->Estimate({0, 10}, opts)->reliability;
  const double r2 = est->Estimate({0, 10}, opts)->reliability;
  // Same pre-sampled worlds => bit-identical estimates.
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(BfsSharing, PrepareForNextQueryResamplesWorlds) {
  const UncertainGraph g = RandomSmallGraph(20, 60, 0.2, 0.8, 32);
  auto est = Make(g, 400);
  EstimateOptions opts;
  opts.num_samples = 400;
  const double r1 = est->Estimate({0, 10}, opts)->reliability;
  ASSERT_TRUE(est->PrepareForNextQuery(999).ok());
  const double r2 = est->Estimate({0, 10}, opts)->reliability;
  // With K=400 worlds a resample virtually never reproduces the estimate.
  EXPECT_NE(r1, r2);
}

TEST(BfsSharing, UsesPrefixOfIndexWhenKSmaller) {
  const UncertainGraph g = DiamondGraph(0.5);
  auto est = Make(g, 10000);
  EstimateOptions opts;
  opts.num_samples = 5000;  // K < L
  const double expected = 1.0 - 0.75 * 0.75;
  EXPECT_NEAR(est->Estimate({0, 3}, opts)->reliability, expected,
              SamplingTolerance(expected, 5000));
}

TEST(BfsSharing, RejectsKAboveIndexSize) {
  const UncertainGraph g = LineGraph3();
  auto est = Make(g, 100);
  EstimateOptions opts;
  opts.num_samples = 101;
  const auto r = est->Estimate({0, 2}, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BfsSharing, IndexMemoryScalesWithL) {
  const UncertainGraph g = RandomSmallGraph(50, 200, 0.2, 0.8, 33);
  auto small = Make(g, 256);
  auto large = Make(g, 2048);
  EXPECT_GT(large->IndexMemoryBytes(), small->IndexMemoryBytes());
  // L=2048 stores 8x the bits of L=256; the per-edge BitVector header
  // dilutes the ratio, but the growth must clearly track L.
  const double ratio = static_cast<double>(large->IndexMemoryBytes()) /
                       static_cast<double>(small->IndexMemoryBytes());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 8.5);
}

TEST(BfsSharing, SaveLoadRoundTripPreservesAnswers) {
  const UncertainGraph g = RandomSmallGraph(15, 45, 0.2, 0.8, 34);
  auto est = Make(g, 500);
  const std::string path =
      (std::filesystem::temp_directory_path() / "relcomp_bfs_index.bin").string();
  ASSERT_TRUE(est->SaveToFile(path).ok());

  Result<std::unique_ptr<BfsSharingEstimator>> loaded =
      BfsSharingEstimator::LoadFromFile(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EstimateOptions opts;
  opts.num_samples = 500;
  EXPECT_DOUBLE_EQ(est->Estimate({0, 9}, opts)->reliability,
                   (*loaded)->Estimate({0, 9}, opts)->reliability);
  std::filesystem::remove(path);
}

TEST(BfsSharing, LoadRejectsMismatchedGraph) {
  const UncertainGraph g = RandomSmallGraph(15, 45, 0.2, 0.8, 35);
  auto est = Make(g, 100);
  const std::string path =
      (std::filesystem::temp_directory_path() / "relcomp_bfs_mismatch.bin")
          .string();
  ASSERT_TRUE(est->SaveToFile(path).ok());
  const UncertainGraph other = RandomSmallGraph(15, 44, 0.2, 0.8, 36);
  EXPECT_FALSE(BfsSharingEstimator::LoadFromFile(other, path).ok());
  std::filesystem::remove(path);
}

TEST(BfsSharing, RejectsZeroIndexSamples) {
  const UncertainGraph g = LineGraph3();
  BfsSharingOptions options;
  options.index_samples = 0;
  EXPECT_FALSE(BfsSharingEstimator::Create(g, options, 1).ok());
}

TEST(BfsSharing, ReplicasShareOneIndexGeneration) {
  const UncertainGraph g = RandomSmallGraph(20, 60, 0.2, 0.8, 40);
  BfsSharingOptions options;
  options.index_samples = 500;
  const uint64_t builds_before = BfsSharingIndex::BuildCount();
  auto index = BfsSharingIndex::Build(g, options, 7).MoveValue();
  auto a = BfsSharingEstimator::Create(g, index).MoveValue();
  auto b = BfsSharingEstimator::Create(g, index).MoveValue();
  // Two replicas, one build; both read literally the same generation.
  EXPECT_EQ(BfsSharingIndex::BuildCount() - builds_before, 1u);
  EXPECT_EQ(a->SharedIndexIdentity(), index.get());
  EXPECT_EQ(a->SharedIndexIdentity(), b->SharedIndexIdentity());
  EXPECT_EQ(a->SharedIndexBytes(), index->MemoryBytes());

  EstimateOptions opts;
  opts.num_samples = 500;
  EXPECT_DOUBLE_EQ(a->Estimate({0, 10}, opts)->reliability,
                   b->Estimate({0, 10}, opts)->reliability);
}

TEST(BfsSharing, GenerationSwapLeavesSharingReplicasIntact) {
  const UncertainGraph g = RandomSmallGraph(20, 60, 0.2, 0.8, 41);
  BfsSharingOptions options;
  options.index_samples = 400;
  auto index = BfsSharingIndex::Build(g, options, 8).MoveValue();
  auto a = BfsSharingEstimator::Create(g, index).MoveValue();
  auto b = BfsSharingEstimator::Create(g, index).MoveValue();
  EstimateOptions opts;
  opts.num_samples = 400;
  const double before = b->Estimate({0, 10}, opts)->reliability;

  // a resamples onto a private fresh generation; b keeps reading gen-0.
  ASSERT_TRUE(a->PrepareForNextQuery(999).ok());
  EXPECT_NE(a->SharedIndexIdentity(), b->SharedIndexIdentity());
  EXPECT_EQ(b->SharedIndexIdentity(), index.get());
  EXPECT_DOUBLE_EQ(b->Estimate({0, 10}, opts)->reliability, before);
  // With 400 worlds a resample virtually never reproduces the estimate.
  EXPECT_NE(a->Estimate({0, 10}, opts)->reliability, before);
}

TEST(BfsSharing, SaveLoadRoundTripProducesShareableIndex) {
  const UncertainGraph g = RandomSmallGraph(15, 45, 0.2, 0.8, 42);
  auto est = Make(g, 500);
  const std::string path =
      (std::filesystem::temp_directory_path() / "relcomp_bfs_shared.bin")
          .string();
  ASSERT_TRUE(est->SaveToFile(path).ok());

  auto loaded = BfsSharingIndex::LoadFromFile(g, path).MoveValue();
  EXPECT_EQ(loaded->num_samples(), 500u);
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  // Two replicas over the loaded generation answer bit-identically to the
  // estimator that saved it.
  auto a = BfsSharingEstimator::Create(g, loaded).MoveValue();
  auto b = BfsSharingEstimator::Create(g, loaded).MoveValue();
  EstimateOptions opts;
  opts.num_samples = 500;
  const double expected = est->Estimate({0, 9}, opts)->reliability;
  EXPECT_DOUBLE_EQ(a->Estimate({0, 9}, opts)->reliability, expected);
  EXPECT_DOUBLE_EQ(b->Estimate({0, 9}, opts)->reliability, expected);
  EXPECT_EQ(a->SharedIndexIdentity(), b->SharedIndexIdentity());
  std::filesystem::remove(path);
}

TEST(BfsSharing, SharedIndexCreateRejectsMismatchedGraph) {
  const UncertainGraph g = RandomSmallGraph(15, 45, 0.2, 0.8, 43);
  BfsSharingOptions options;
  options.index_samples = 100;
  auto index = BfsSharingIndex::Build(g, options, 1).MoveValue();
  const UncertainGraph other = RandomSmallGraph(15, 44, 0.2, 0.8, 44);
  EXPECT_FALSE(BfsSharingEstimator::Create(other, index).ok());
  EXPECT_FALSE(BfsSharingEstimator::Create(g, nullptr).ok());
}

TEST(BfsSharing, StatisticallyMatchesMonteCarlo) {
  // Same estimator variance as MC (Section 2.3): compare across resamples.
  const UncertainGraph g = RandomSmallGraph(12, 36, 0.2, 0.7, 37);
  const double exact = *ExactReliabilityFactoring(g, 0, 11);
  auto est = Make(g, 2000);
  double sum = 0.0;
  constexpr int kRuns = 10;
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(est->PrepareForNextQuery(5000 + i).ok());
    EstimateOptions opts;
    opts.num_samples = 2000;
    sum += est->Estimate({0, 11}, opts)->reliability;
  }
  EXPECT_NEAR(sum / kRuns, exact, SamplingTolerance(exact, 2000 * kRuns, 4.5));
}

}  // namespace
}  // namespace relcomp
