#include "graph/uncertain_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::GraphFromString;

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  const UncertainGraph g = b.Build().MoveValue();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, AddNodeGrowsIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(), 0u);
  EXPECT_EQ(b.AddNode(), 1u);
  EXPECT_EQ(b.num_nodes(), 2u);
}

TEST(GraphBuilder, AddEdgeAutoGrowsNodes) {
  GraphBuilder b;
  b.AddEdge(5, 9, 0.5).CheckOK();
  EXPECT_EQ(b.num_nodes(), 10u);
}

TEST(GraphBuilder, RejectsInvalidProbabilities) {
  GraphBuilder b(2);
  EXPECT_FALSE(b.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, -0.5).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, 1.5).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, std::nan("")).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, 1e-9).ok());
}

TEST(GraphBuilder, RejectsReservedIds) {
  GraphBuilder b;
  EXPECT_FALSE(b.AddEdge(kInvalidNode, 0, 0.5).ok());
  EXPECT_FALSE(b.AddEdge(0, kInvalidNode, 0.5).ok());
}

TEST(GraphBuilder, BidirectedAddsBothDirections) {
  GraphBuilder b(2);
  b.AddBidirectedEdge(0, 1, 0.3).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0).tail, 0u);
  EXPECT_EQ(g.edge(1).tail, 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).prob, 0.3);
  EXPECT_DOUBLE_EQ(g.edge(1).prob, 0.3);
}

TEST(GraphBuilder, CombineParallelEdgesUnionsProbabilities) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(0, 0, 0.9).CheckOK();  // self-loop dropped
  b.CombineParallelEdges();
  const UncertainGraph g = b.Build().MoveValue();
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).prob, 0.75);
}

TEST(GraphBuilder, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5).CheckOK();
  const UncertainGraph g1 = b.Build().MoveValue();
  b.AddEdge(1, 2, 0.5).CheckOK();
  const UncertainGraph g2 = b.Build().MoveValue();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(UncertainGraph, CsrAdjacencyIsConsistent) {
  const UncertainGraph g = GraphFromString(
      "0 1 0.5\n0 2 0.6\n1 2 0.7\n2 0 0.8\n2 1 0.9\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);

  // Every out entry must be mirrored by an in entry carrying the same edge id.
  size_t checked = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& a : g.OutEdges(v)) {
      const EdgeRecord& rec = g.edge(a.edge);
      EXPECT_EQ(rec.tail, v);
      EXPECT_EQ(rec.head, a.neighbor);
      EXPECT_DOUBLE_EQ(rec.prob, a.prob);
      bool mirrored = false;
      for (const AdjEntry& in : g.InEdges(a.neighbor)) {
        mirrored |= (in.edge == a.edge && in.neighbor == v);
      }
      EXPECT_TRUE(mirrored);
      ++checked;
    }
  }
  EXPECT_EQ(checked, g.num_edges());
}

TEST(UncertainGraph, HasNode) {
  const UncertainGraph g = GraphFromString("0 1 0.5\n");
  EXPECT_TRUE(g.HasNode(0));
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_FALSE(g.HasNode(2));
  EXPECT_FALSE(g.HasNode(kInvalidNode));
}

TEST(UncertainGraph, IsolatedNodesHaveEmptyAdjacency) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.5).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 0u);
  EXPECT_TRUE(g.OutEdges(3).empty());
}

TEST(UncertainGraph, ProbStatsMatchHandComputation) {
  const UncertainGraph g = GraphFromString("0 1 0.2\n1 2 0.4\n2 3 0.6\n3 0 0.8\n");
  const EdgeProbStats s = g.ProbStats();
  EXPECT_NEAR(s.mean, 0.5, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(0.05), 1e-12);
  EXPECT_NEAR(s.q50, 0.5, 1e-12);
  EXPECT_NEAR(s.q25, 0.35, 1e-12);
  EXPECT_NEAR(s.q75, 0.65, 1e-12);
}

TEST(UncertainGraph, MemoryBytesGrowsWithSize) {
  const UncertainGraph small = GraphFromString("0 1 0.5\n");
  const UncertainGraph big = testing::RandomSmallGraph(100, 500, 0.1, 0.9, 3);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 0u);
}

TEST(UncertainGraph, DescribeMentionsCounts) {
  const UncertainGraph g = GraphFromString("0 1 0.5\n1 2 0.5\n");
  const std::string desc = g.Describe();
  EXPECT_NE(desc.find("n=3"), std::string::npos);
  EXPECT_NE(desc.find("m=2"), std::string::npos);
}

}  // namespace
}  // namespace relcomp
