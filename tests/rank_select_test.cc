#include "common/rank_select.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bitvector.h"
#include "common/packed_ints.h"
#include "common/rng.h"

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// PackedIntVector
// ---------------------------------------------------------------------------

TEST(PackedIntVector, WidthForCoversBoundaries) {
  EXPECT_EQ(PackedIntVector::WidthFor(0), 1u);
  EXPECT_EQ(PackedIntVector::WidthFor(1), 1u);
  EXPECT_EQ(PackedIntVector::WidthFor(2), 2u);
  EXPECT_EQ(PackedIntVector::WidthFor(3), 2u);
  EXPECT_EQ(PackedIntVector::WidthFor(4), 3u);
  EXPECT_EQ(PackedIntVector::WidthFor(255), 8u);
  EXPECT_EQ(PackedIntVector::WidthFor(256), 9u);
  EXPECT_EQ(PackedIntVector::WidthFor(~uint64_t{0}), 64u);
}

TEST(PackedIntVector, RoundTripsEveryWidth) {
  Rng rng(21);
  for (uint32_t width = 1; width <= 64; ++width) {
    const uint64_t mask =
        width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    const size_t n = 97;  // odd size so values straddle word boundaries
    PackedIntVector v(n, width);
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = rng.NextU64() & mask;
      v.Set(i, expected[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(v.Get(i), expected[i]) << "width " << width << " i " << i;
    }
  }
}

TEST(PackedIntVector, OverwriteDoesNotLeakIntoNeighbors) {
  PackedIntVector v(10, 7);
  for (size_t i = 0; i < 10; ++i) v.Set(i, 0x55);
  v.Set(5, 0x2A);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(v.Get(i), i == 5 ? 0x2Au : 0x55u) << i;
  }
  // Values above the width are masked, not smeared.
  v.Set(5, ~uint64_t{0});
  EXPECT_EQ(v.Get(5), 0x7Fu);
  EXPECT_EQ(v.Get(4), 0x55u);
  EXPECT_EQ(v.Get(6), 0x55u);
}

TEST(PackedIntVector, MemoryTracksWidth) {
  // 1000 values: 40-bit packing should use ~5x the bytes of 8-bit packing.
  const size_t narrow = PackedIntVector(1000, 8).MemoryBytes();
  const size_t wide = PackedIntVector(1000, 40).MemoryBytes();
  EXPECT_GT(wide, 4 * narrow);
  EXPECT_LT(wide, 6 * narrow);
}

// ---------------------------------------------------------------------------
// Rank/select oracle suite, shared by both variants
// ---------------------------------------------------------------------------

/// Adversarial + random bit sequences: empty, all-zero, all-one, single
/// trailing bit, directory-boundary sizes (511/512/513 for the plain
/// directory, 15/480-bit block/superblock edges for RRR), and random fills
/// at sparse through dense densities.
std::vector<BitVector> OracleSequences() {
  std::vector<BitVector> seqs;
  seqs.emplace_back(0);
  for (const size_t n : {1u, 15u, 16u, 64u, 479u, 480u, 481u, 511u, 512u,
                         513u, 2000u}) {
    seqs.emplace_back(n);          // all zeros
    seqs.emplace_back(n);          // all ones
    seqs.back().SetAll();
    seqs.emplace_back(n);          // single trailing bit
    seqs.back().Set(n - 1);
  }
  Rng rng(33);
  for (const double density : {0.01, 0.1, 0.5, 0.9}) {
    for (const size_t n : {100u, 1000u, 5000u}) {
      seqs.emplace_back(n);
      seqs.back().FillBernoulli(density, rng);
    }
  }
  return seqs;
}

template <typename T>
void CheckAgainstOracle(const BitVector& bits) {
  const T rs(bits);
  ASSERT_EQ(rs.size(), bits.size());
  size_t ones = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(rs.Get(i), bits.Get(i)) << "Get " << i;
    EXPECT_EQ(rs.Rank1(i), ones) << "Rank1 " << i;
    if (bits.Get(i)) {
      ++ones;
      EXPECT_EQ(rs.Select1(ones), i) << "Select1 " << ones;
    }
  }
  EXPECT_EQ(rs.Rank1(bits.size()), ones);
  EXPECT_EQ(rs.num_ones(), ones);
}

TEST(RankSelectBitVector, MatchesOracleScan) {
  for (const BitVector& bits : OracleSequences()) {
    SCOPED_TRACE("n=" + std::to_string(bits.size()) +
                 " ones=" + std::to_string(bits.Count()));
    CheckAgainstOracle<RankSelectBitVector>(bits);
  }
}

TEST(RrrBitVector, MatchesOracleScan) {
  for (const BitVector& bits : OracleSequences()) {
    SCOPED_TRACE("n=" + std::to_string(bits.size()) +
                 " ones=" + std::to_string(bits.Count()));
    CheckAgainstOracle<RrrBitVector>(bits);
  }
}

TEST(RankSelectBitVector, SelectAcrossSuperblockBoundaries) {
  // One bit per 512-bit superblock plus a dense run: exercises the select
  // hint walk across many superblocks.
  BitVector bits(512 * 40);
  for (size_t s = 0; s < 40; ++s) bits.Set(s * 512 + (s % 64));
  for (size_t i = 5000; i < 5200; ++i) bits.Set(i);
  CheckAgainstOracle<RankSelectBitVector>(bits);
}

TEST(RrrBitVector, CompressesSparseSequences) {
  // 1% density: RRR must land well below the plain directory (which always
  // stores the raw words) — this is the win the compact graph layout picks
  // it for on high-average-degree offset sequences.
  Rng rng(44);
  BitVector bits(200000);
  bits.FillBernoulli(0.01, rng);
  const RrrBitVector rrr(bits);
  const RankSelectBitVector plain(bits);
  EXPECT_LT(rrr.MemoryBytes() * 2, plain.MemoryBytes())
      << "rrr=" << rrr.MemoryBytes() << " plain=" << plain.MemoryBytes();
}

TEST(RankSelectAndRrr, AgreeOnEverySequence) {
  Rng rng(55);
  BitVector bits(7777);
  bits.FillBernoulli(0.3, rng);
  const RankSelectBitVector plain(bits);
  const RrrBitVector rrr(bits);
  ASSERT_EQ(plain.num_ones(), rrr.num_ones());
  for (size_t i = 0; i <= bits.size(); i += 13) {
    EXPECT_EQ(plain.Rank1(i), rrr.Rank1(i)) << i;
  }
  for (size_t k = 1; k <= plain.num_ones(); k += 7) {
    EXPECT_EQ(plain.Select1(k), rrr.Select1(k)) << k;
  }
}

}  // namespace
}  // namespace relcomp
