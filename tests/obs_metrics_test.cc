#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "test_util.h"

namespace relcomp::obs {
namespace {

using ::relcomp::testing::RandomSmallGraph;

TEST(CounterTest, StartsAtZeroAndCounts) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (uint64_t j = 0; j < kPerThread; ++j) counter.Inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.Value(), 3.5);
  gauge.Add(-1.5);
  EXPECT_EQ(gauge.Value(), 2.0);
  gauge.SetMax(1.0);  // below current: no change
  EXPECT_EQ(gauge.Value(), 2.0);
  gauge.SetMax(7.0);
  EXPECT_EQ(gauge.Value(), 7.0);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(RegistryTest, SameNameSamePointerDifferentLabelDifferentInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "workload", "st");
  Counter* b = registry.GetCounter("requests_total", "workload", "st");
  Counter* c = registry.GetCounter("requests_total", "workload", "topk");
  Counter* unlabeled = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, unlabeled);
  a->Inc(5);
  c->Inc(3);
  // Family members are fully isolated.
  EXPECT_EQ(registry.GetCounter("requests_total", "workload", "st")->Value(),
            5u);
  EXPECT_EQ(registry.GetCounter("requests_total", "workload", "topk")->Value(),
            3u);
  EXPECT_EQ(registry.GetCounter("requests_total")->Value(), 0u);
  // The three instrument namespaces are independent too.
  Gauge* gauge = registry.GetGauge("requests_total");
  gauge->Set(9.0);
  EXPECT_EQ(registry.GetCounter("requests_total")->Value(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram histogram;
  for (uint64_t v = 0; v < 16; ++v) histogram.Record(v);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 16u);
  EXPECT_EQ(snapshot.min, 0u);
  EXPECT_EQ(snapshot.max, 15u);
  EXPECT_EQ(snapshot.sum, 120u);
  // Values below 16 land in their own exact bucket, so every quantile of
  // this distribution is exact.
  EXPECT_EQ(snapshot.Quantile(0.5), 7u);  // nearest-rank: the 8th smallest
  EXPECT_EQ(snapshot.Quantile(1.0), 15u);
}

TEST(HistogramTest, BucketIndexRoundTrips) {
  // Every probe value must fall inside the [lower, lower + width) range of
  // the bucket it maps to, and bucket indexes must be monotone in the value.
  uint32_t last_index = 0;
  for (uint64_t exponent = 0; exponent < 63; ++exponent) {
    for (uint64_t offset : {uint64_t{0}, uint64_t{1}}) {
      const uint64_t value = (uint64_t{1} << exponent) + offset;
      const uint32_t index = Histogram::BucketIndex(value);
      ASSERT_LT(index, Histogram::kBuckets);
      const uint64_t lower = Histogram::BucketLowerBound(index);
      const uint64_t width = Histogram::BucketWidth(index);
      EXPECT_GE(value, lower) << "value " << value;
      EXPECT_LT(value - lower, width) << "value " << value;
      EXPECT_GE(index, last_index);
      last_index = index;
    }
  }
}

TEST(HistogramTest, QuantilesTrackExactSortWithinBucketError) {
  // Oracle check: quantiles from the log buckets stay within the documented
  // relative error (bucket half-width <= 1/16) of the exact sorted-sample
  // quantiles, over a long-tailed latency-like distribution.
  Histogram histogram;
  std::vector<uint64_t> values;
  std::mt19937_64 rng(20190607);
  std::lognormal_distribution<double> latency(10.0, 1.5);  // ~22us median
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(latency(rng));
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const uint64_t exact = values[rank == 0 ? 0 : rank - 1];
    const uint64_t approx = snapshot.Quantile(q);
    const double relative_error =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(relative_error, 1.0 / 16.0 + 1e-9)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Order can never invert, and the extremes are exact.
  EXPECT_LE(snapshot.Quantile(0.50), snapshot.Quantile(0.99));
  EXPECT_EQ(snapshot.Quantile(1.0), values.back());
  EXPECT_EQ(snapshot.min, values.front());
  EXPECT_EQ(snapshot.max, values.back());
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&histogram, i] {
      for (uint64_t j = 0; j < kPerThread; ++j) {
        histogram.Record(static_cast<uint64_t>(i) * kPerThread + j);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  EXPECT_EQ(snapshot.min, 0u);
  EXPECT_EQ(snapshot.max, kThreads * kPerThread - 1);
  uint64_t bucket_total = 0;
  for (uint64_t bucket : snapshot.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snapshot.count);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.Record(100);
  histogram.Reset();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.Quantile(0.5), 0u);
}

TEST(ExportTest, JsonCarriesEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("widgets_total")->Inc(7);
  registry.GetCounter("engine_queries_total", "workload", "st")->Inc(2);
  registry.GetGauge("temperature")->Set(21.5);
  registry.GetHistogram("latency_ns")->Record(1000);
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"widgets_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"engine_queries_total\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"st\""), std::string::npos);
  EXPECT_NE(json.find("\"temperature\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ExportTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("widgets_total", "kind", "small")->Inc(3);
  registry.GetCounter("widgets_total", "kind", "large")->Inc(4);
  registry.GetHistogram("latency_ns")->Record(5);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("# TYPE widgets_total counter"), std::string::npos);
  EXPECT_NE(text.find("widgets_total{kind=\"small\"} 3"), std::string::npos);
  EXPECT_NE(text.find("widgets_total{kind=\"large\"} 4"), std::string::npos);
  // One TYPE line per family, not per member.
  EXPECT_EQ(text.find("# TYPE widgets_total counter"),
            text.rfind("# TYPE widgets_total counter"));
  EXPECT_NE(text.find("# TYPE latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_sum 5"), std::string::npos);
}

TEST(EngineScrapeTest, OneScrapeReportsEveryLegacyStatsField) {
  // The single-scrape acceptance contract: the engine's registry must carry
  // every counter the legacy EngineStatsSnapshot reports, with the same
  // values, plus the per-stage latency family — all reachable from one
  // metrics() handle.
  const UncertainGraph graph = RandomSmallGraph(20, 50, 0.2, 0.9, 7);
  EngineOptions options;
  options.num_threads = 4;
  options.num_samples = 200;
  options.num_strata = 4;
  options.seed = 99;
  auto engine = QueryEngine::Create(graph, options).MoveValue();

  std::vector<EngineQuery> queries;
  for (NodeId t = 1; t < 10; ++t) queries.push_back(EngineQuery::St(0, t));
  queries.push_back(EngineQuery::TopK(0, 3));
  queries.push_back(EngineQuery::TopK(0, 5));
  queries.push_back(EngineQuery::TopK(2, 4));
  queries.push_back(EngineQuery::St(0, 1));  // repeat: a cache hit
  auto results = engine->RunBatch(queries);
  ASSERT_TRUE(results.ok()) << results.status().message();

  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  MetricsRegistry& registry = engine->metrics();
  EXPECT_EQ(registry.GetCounter("engine_executed_total")->Value(),
            snapshot.executed);
  EXPECT_EQ(registry.GetCounter("engine_coalesced_total")->Value(),
            snapshot.coalesced);
  EXPECT_EQ(registry.GetCounter("engine_failures_total")->Value(),
            snapshot.failures);
  EXPECT_EQ(registry.GetCounter("engine_sweep_executed_total")->Value(),
            snapshot.sweep_executed);
  EXPECT_EQ(registry.GetCounter("engine_sweep_hits_total")->Value(),
            snapshot.sweep_hits);
  EXPECT_EQ(registry.GetCounter("engine_sweep_coalesced_total")->Value(),
            snapshot.sweep_coalesced);
  EXPECT_EQ(registry.GetCounter("engine_strata_executed_total")->Value(),
            snapshot.strata_executed);
  EXPECT_EQ(registry.GetCounter("engine_strata_stolen_total")->Value(),
            snapshot.strata_stolen);
  EXPECT_EQ(registry.GetCounter("engine_scout_warms_total")->Value(),
            snapshot.scout_warms);
  EXPECT_EQ(registry.GetCounter("engine_prebuilt_used_total")->Value(),
            snapshot.prebuilt_used);
  EXPECT_EQ(
      registry.GetCounter("engine_queries_total", "workload", "st")->Value(),
      snapshot.queries_of(WorkloadKind::kSt));
  EXPECT_EQ(
      registry.GetCounter("engine_queries_total", "workload", "top-k")->Value(),
      snapshot.queries_of(WorkloadKind::kTopK));
  EXPECT_EQ(registry.GetHistogram("engine_query_latency_ns")->Snapshot().count,
            snapshot.queries);
  // Cache counters share the same registry (one scrape covers them too).
  EXPECT_EQ(registry.GetCounter("result_cache_hits_total")->Value(),
            snapshot.cache.hits);
  EXPECT_EQ(registry.GetCounter("result_cache_misses_total")->Value(),
            snapshot.cache.misses);
  EXPECT_EQ(registry.GetCounter("sweep_cache_hits_total")->Value(),
            snapshot.sweep_cache.hits);
  // Every query rode the pool once (scout warm tasks may add more), and the
  // executed ones went through cache probe + stratum + publish.
  EXPECT_GE(registry.GetHistogram("engine_stage_latency_ns", "stage",
                                  "queue_wait")
                ->Snapshot()
                .count,
            snapshot.queries);
  EXPECT_GT(registry.GetHistogram("engine_stage_latency_ns", "stage",
                                  "cache_probe")
                ->Snapshot()
                .count,
            0u);
  EXPECT_GT(registry.GetHistogram("engine_stage_latency_ns", "stage",
                                  "stratum")
                ->Snapshot()
                .count,
            0u);
  EXPECT_GT(
      registry.GetHistogram("engine_stage_latency_ns", "stage", "publish")
          ->Snapshot()
          .count,
      0u);
  // And the whole thing is scrapeable as one JSON document.
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("engine_stage_latency_ns"), std::string::npos);
  EXPECT_NE(json.find("result_cache_hits_total"), std::string::npos);
  EXPECT_NE(json.find("sweep_cache_bytes"), std::string::npos);
}

TEST(EngineScrapeTest, SnapshotArithmeticStillHolds) {
  // The legacy invariant executed + coalesced + failures + cache.hits ==
  // queries must survive the registry migration.
  const UncertainGraph graph = RandomSmallGraph(16, 40, 0.3, 0.9, 3);
  EngineOptions options;
  options.num_threads = 4;
  options.num_samples = 150;
  options.seed = 5;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < 4; ++s) {
    for (NodeId t = 0; t < 8; ++t) {
      if (s != t) queries.push_back(EngineQuery::St(s, t));
    }
  }
  queries.insert(queries.end(), queries.begin(), queries.begin() + 10);
  ASSERT_TRUE(engine->RunBatch(queries).ok());
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.executed + snapshot.coalesced + snapshot.failures +
                snapshot.cache.hits,
            snapshot.queries);
  EXPECT_EQ(snapshot.queries, queries.size());
}

}  // namespace
}  // namespace relcomp::obs
