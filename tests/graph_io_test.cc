#include "graph/graph_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "test_util.h"

namespace relcomp {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("relcomp_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, ParseBasicEdgeList) {
  const Result<UncertainGraph> g = ParseEdgeListString("0 1 0.5\n1 2 0.25\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g->edge(1).prob, 0.25);
}

TEST_F(GraphIoTest, ParseSkipsCommentsAndBlankLines) {
  const Result<UncertainGraph> g =
      ParseEdgeListString("# comment\n\n% other comment\n0 1 0.5\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST_F(GraphIoTest, ParseAcceptsTabsAndExtraSpaces) {
  const Result<UncertainGraph> g = ParseEdgeListString("0\t1\t0.5\n 2  3  0.75 \n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST_F(GraphIoTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParseEdgeListString("0 1\n").ok());
  EXPECT_FALSE(ParseEdgeListString("0 1 0.5 9\n").ok());
  EXPECT_FALSE(ParseEdgeListString("a b 0.5\n").ok());
  EXPECT_FALSE(ParseEdgeListString("0 1 zero\n").ok());
}

TEST_F(GraphIoTest, ParseRejectsBadProbabilities) {
  EXPECT_FALSE(ParseEdgeListString("0 1 0\n").ok());
  EXPECT_FALSE(ParseEdgeListString("0 1 1.5\n").ok());
  EXPECT_FALSE(ParseEdgeListString("0 1 -0.2\n").ok());
}

TEST_F(GraphIoTest, ParseReportsLineNumbers) {
  const Result<UncertainGraph> g = ParseEdgeListString("0 1 0.5\nbroken\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST_F(GraphIoTest, TextRoundTrip) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.01, 0.99, 11);
  ASSERT_TRUE(SaveEdgeListText(g, Path("g.txt")).ok());
  const Result<UncertainGraph> back = LoadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  ASSERT_EQ(back->num_nodes(), g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back->edge(e).tail, g.edge(e).tail);
    EXPECT_EQ(back->edge(e).head, g.edge(e).head);
    EXPECT_DOUBLE_EQ(back->edge(e).prob, g.edge(e).prob);  // %.17g is lossless
  }
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  const UncertainGraph g = testing::RandomSmallGraph(30, 90, 0.01, 0.99, 12);
  ASSERT_TRUE(SaveBinary(g, Path("g.bin")).ok());
  const Result<UncertainGraph> back = LoadBinary(Path("g.bin"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_edges(), g.num_edges());
  ASSERT_EQ(back->num_nodes(), g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(back->edge(e).prob, g.edge(e).prob);
  }
}

TEST_F(GraphIoTest, BinaryPreservesIsolatedNodes) {
  GraphBuilder b(10);
  b.AddEdge(0, 1, 0.5).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  ASSERT_TRUE(SaveBinary(g, Path("iso.bin")).ok());
  EXPECT_EQ(LoadBinary(Path("iso.bin"))->num_nodes(), 10u);
}

TEST_F(GraphIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadEdgeListText(Path("missing.txt")).status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadBinary(Path("missing.bin")).status().code(),
            StatusCode::kIOError);
}

TEST_F(GraphIoTest, LoadBinaryRejectsWrongMagic) {
  ASSERT_TRUE(SaveEdgeListText(testing::LineGraph3(), Path("text.txt")).ok());
  EXPECT_FALSE(LoadBinary(Path("text.txt")).ok());
}

TEST_F(GraphIoTest, LoadBinaryDetectsTruncation) {
  const UncertainGraph g = testing::RandomSmallGraph(10, 30, 0.2, 0.8, 13);
  ASSERT_TRUE(SaveBinary(g, Path("t.bin")).ok());
  const auto full = std::filesystem::file_size(Path("t.bin"));
  std::filesystem::resize_file(Path("t.bin"), full / 2);
  EXPECT_FALSE(LoadBinary(Path("t.bin")).ok());
}

TEST_F(GraphIoTest, WriteEdgeListStringHasHeaderComment) {
  const std::string text = WriteEdgeListString(testing::LineGraph3());
  EXPECT_EQ(text.rfind("# relcomp", 0), 0u);
}

}  // namespace
}  // namespace relcomp
