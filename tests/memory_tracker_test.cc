#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(MemoryTracker, StartsEmpty) {
  MemoryTracker tracker;
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 0u);
}

TEST(MemoryTracker, AddAndReleaseTrackCurrent) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  tracker.Release(60);
  EXPECT_EQ(tracker.current_bytes(), 90u);
}

TEST(MemoryTracker, PeakIsHighWaterMark) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Release(100);
  tracker.Add(40);
  EXPECT_EQ(tracker.peak_bytes(), 100u);
  tracker.Add(80);
  EXPECT_EQ(tracker.peak_bytes(), 120u);
}

TEST(MemoryTracker, ReleaseClampsAtZero) {
  MemoryTracker tracker;
  tracker.Add(10);
  tracker.Release(100);
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(MemoryTracker, ResetClearsEverything) {
  MemoryTracker tracker;
  tracker.Add(10);
  tracker.Reset();
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 0u);
}

TEST(MemoryTracker, ResetPeakKeepsCurrent) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Release(70);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_bytes(), 30u);
  EXPECT_EQ(tracker.current_bytes(), 30u);
}

TEST(ScopedAllocation, ReleasesOnScopeExit) {
  MemoryTracker tracker;
  {
    ScopedAllocation scope(&tracker, 64);
    EXPECT_EQ(tracker.current_bytes(), 64u);
  }
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 64u);
}

TEST(ScopedAllocation, GrowExtendsTheScope) {
  MemoryTracker tracker;
  {
    ScopedAllocation scope(&tracker, 10);
    scope.Grow(20);
    EXPECT_EQ(tracker.current_bytes(), 30u);
    EXPECT_EQ(scope.bytes(), 30u);
  }
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(ScopedAllocation, NullTrackerIsSafe) {
  ScopedAllocation scope(nullptr, 10);
  scope.Grow(5);
  EXPECT_EQ(scope.bytes(), 15u);
}

TEST(IndexMemoryReport, TotalsSplitSharedAndReplicaBytes) {
  IndexMemoryReport report;
  EXPECT_EQ(report.total_bytes(), 0u);
  report.shared_bytes = 1000;
  report.replica_bytes = 24;
  report.shared_indexes = 1;
  EXPECT_EQ(report.total_bytes(), 1024u);
}

TEST(CurrentRss, ReturnsPlausibleValue) {
  const size_t rss = CurrentRssBytes();
  // The test process certainly uses between 1 MB and 100 GB.
  EXPECT_GT(rss, 1u << 20);
  EXPECT_LT(rss, 100ull << 30);
}

}  // namespace
}  // namespace relcomp
