#include "graph/generators.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/possible_world.h"

namespace relcomp {
namespace {

TEST(ErdosRenyi, ApproximatesRequestedDensity) {
  Rng rng(1);
  const Topology topo = MakeErdosRenyi(1000, 6.0, /*bidirected=*/true, rng);
  EXPECT_EQ(topo.num_nodes, 1000u);
  EXPECT_TRUE(topo.paired);
  // ~3000 undirected pairs -> ~6000 directed edges.
  EXPECT_NEAR(static_cast<double>(topo.num_edges()), 6000.0, 600.0);
}

TEST(ErdosRenyi, NoSelfLoopsNoDuplicatePairs) {
  Rng rng(2);
  const Topology topo = MakeErdosRenyi(200, 4.0, /*bidirected=*/true, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : topo.edges) {
    EXPECT_NE(u, v);
    EXPECT_TRUE(seen.insert({u, v}).second) << u << "->" << v;
  }
}

TEST(ErdosRenyi, PairedEdgesAreMutualReverses) {
  Rng rng(3);
  const Topology topo = MakeErdosRenyi(100, 4.0, /*bidirected=*/true, rng);
  ASSERT_EQ(topo.num_edges() % 2, 0u);
  for (size_t i = 0; i + 1 < topo.num_edges(); i += 2) {
    EXPECT_EQ(topo.edges[i].first, topo.edges[i + 1].second);
    EXPECT_EQ(topo.edges[i].second, topo.edges[i + 1].first);
  }
}

TEST(BarabasiAlbert, SizeAndPairing) {
  Rng rng(4);
  const Topology topo = MakeBarabasiAlbert(500, 2, /*bidirected=*/true, rng);
  EXPECT_EQ(topo.num_nodes, 500u);
  EXPECT_TRUE(topo.paired);
  // ~2 attachments per node (plus the seed clique) -> ~4n directed edges.
  EXPECT_NEAR(static_cast<double>(topo.num_edges()), 2000.0, 200.0);
}

TEST(BarabasiAlbert, HeavyTailDegrees) {
  Rng rng(5);
  const Topology topo = MakeBarabasiAlbert(2000, 2, /*bidirected=*/true, rng);
  std::vector<size_t> degree(topo.num_nodes, 0);
  for (const auto& [u, v] : topo.edges) {
    (void)v;
    ++degree[u];
  }
  const size_t max_degree = *std::max_element(degree.begin(), degree.end());
  // Preferential attachment must produce hubs far above the mean (~4).
  EXPECT_GT(max_degree, 40u);
}

TEST(BarabasiAlbert, DirectedModeEmitsSingleDirections) {
  Rng rng(6);
  const Topology topo = MakeBarabasiAlbert(300, 3, /*bidirected=*/false, rng);
  EXPECT_FALSE(topo.paired);
  EXPECT_NEAR(static_cast<double>(topo.num_edges()), 900.0, 120.0);
}

TEST(BarabasiAlbert, DeterministicPerSeed) {
  Rng rng1(7);
  Rng rng2(7);
  const Topology a = MakeBarabasiAlbert(100, 2, true, rng1);
  const Topology b = MakeBarabasiAlbert(100, 2, true, rng2);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(WattsStrogatz, RingDegreeWithoutRewiring) {
  Rng rng(8);
  const Topology topo = MakeWattsStrogatz(100, 2, 0.0, rng);
  // Each node links to 2 clockwise neighbors; 200 undirected pairs = 400 edges.
  EXPECT_EQ(topo.num_edges(), 400u);
}

TEST(WattsStrogatz, RewiringKeepsGraphSimple) {
  Rng rng(9);
  const Topology topo = MakeWattsStrogatz(300, 3, 0.3, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : topo.edges) {
    EXPECT_NE(u, v);
    EXPECT_TRUE(seen.insert({u, v}).second);
  }
}

TEST(Grid, StructureAndCounts) {
  const Topology topo = MakeGrid(4, 5);
  EXPECT_EQ(topo.num_nodes, 20u);
  // Horizontal pairs 4*4=16, vertical 3*5=15 -> 31 pairs, 62 directed edges.
  EXPECT_EQ(topo.num_edges(), 62u);
}

TEST(Grid, IsConnected) {
  const Topology topo = MakeGrid(6, 7);
  std::vector<double> probs(topo.num_edges(), 1.0);
  const UncertainGraph g = BuildFromTopology(topo, probs).MoveValue();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(ReachableIgnoringProbs(g, 0, v)) << v;
  }
}

TEST(CommunityGraph, RespectsNodeBudget) {
  Rng rng(10);
  const Topology topo = MakeCommunityGraph(500, 10, 3, 0.25, rng);
  EXPECT_EQ(topo.num_nodes, 500u);
  for (const auto& [u, v] : topo.edges) {
    EXPECT_LT(u, 500u);
    EXPECT_LT(v, 500u);
    EXPECT_NE(u, v);
  }
}

TEST(CommunityGraph, MostEdgesStayIntraCommunity) {
  Rng rng(11);
  const uint32_t csize = 10;
  const Topology topo = MakeCommunityGraph(1000, csize, 3, 0.25, rng);
  size_t intra = 0;
  for (const auto& [u, v] : topo.edges) {
    intra += (u / csize == v / csize);
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(topo.num_edges()),
            0.7);
}

TEST(BuildFromTopology, TransfersEdgesAndProbs) {
  Topology topo;
  topo.num_nodes = 3;
  topo.edges = {{0, 1}, {1, 2}};
  const Result<UncertainGraph> g = BuildFromTopology(topo, {0.5, 0.25});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g->edge(1).prob, 0.25);
}

TEST(BuildFromTopology, RejectsSizeMismatch) {
  Topology topo;
  topo.num_nodes = 2;
  topo.edges = {{0, 1}};
  EXPECT_FALSE(BuildFromTopology(topo, {}).ok());
}

TEST(Generators, DegenerateSizes) {
  Rng rng(12);
  EXPECT_EQ(MakeErdosRenyi(1, 4.0, true, rng).num_edges(), 0u);
  EXPECT_EQ(MakeBarabasiAlbert(1, 2, true, rng).num_edges(), 0u);
  EXPECT_EQ(MakeWattsStrogatz(2, 1, 0.5, rng).num_edges(), 0u);
  EXPECT_EQ(MakeGrid(1, 1).num_edges(), 0u);
}

}  // namespace
}  // namespace relcomp
