#include "reliability/mc_sampling.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(MonteCarlo, UnbiasedOnLineGraph) {
  const UncertainGraph g = LineGraph3(0.5, 0.5);
  MonteCarloEstimator mc(g);
  EstimateOptions opts;
  opts.num_samples = 20000;
  opts.seed = 1;
  const double r = mc.Estimate({0, 2}, opts)->reliability;
  EXPECT_NEAR(r, 0.25, SamplingTolerance(0.25, 20000));
}

TEST(MonteCarlo, VarianceMatchesBinomialTheory) {
  // Var = R(1-R)/K (Eq. 4). Measure empirical variance over repeats.
  const UncertainGraph g = DiamondGraph(0.5);
  MonteCarloEstimator mc(g);
  const double truth = 1.0 - 0.75 * 0.75;  // 0.4375
  constexpr uint32_t kK = 200;
  constexpr int kRepeats = 400;
  RunningStats stats;
  for (int i = 0; i < kRepeats; ++i) {
    EstimateOptions opts;
    opts.num_samples = kK;
    opts.seed = 1000 + i;
    stats.Add(mc.Estimate({0, 3}, opts)->reliability);
  }
  const double theory = truth * (1.0 - truth) / kK;
  EXPECT_NEAR(stats.mean(), truth, 0.01);
  EXPECT_NEAR(stats.SampleVariance(), theory, theory * 0.35);
}

TEST(MonteCarlo, ReusableAcrossQueries) {
  const UncertainGraph g = DiamondGraph(0.7);
  MonteCarloEstimator mc(g);
  EstimateOptions opts;
  opts.num_samples = 5000;
  opts.seed = 9;
  const double r03 = mc.Estimate({0, 3}, opts)->reliability;
  const double r01 = mc.Estimate({0, 1}, opts)->reliability;
  const double r03_again = mc.Estimate({0, 3}, opts)->reliability;
  EXPECT_NEAR(r01, 0.7, SamplingTolerance(0.7, 5000));
  EXPECT_DOUBLE_EQ(r03, r03_again);  // scratch reuse must not corrupt state
}

TEST(MonteCarlo, ResultMetadataIsFilled) {
  const UncertainGraph g = LineGraph3();
  MonteCarloEstimator mc(g);
  EstimateOptions opts;
  opts.num_samples = 100;
  const Result<EstimateResult> r = mc.Estimate({0, 2}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_samples, 100u);
  EXPECT_GE(r->seconds, 0.0);
  EXPECT_GT(r->peak_memory_bytes, 0u);
  EXPECT_EQ(std::string(mc.name()), "MC");
  EXPECT_EQ(mc.IndexMemoryBytes(), 0u);  // index-free
}

TEST(MonteCarlo, AgreesWithExactAcrossManyGraphs) {
  for (uint64_t seed = 200; seed < 212; ++seed) {
    const UncertainGraph g = RandomSmallGraph(8, 16, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 7);
    MonteCarloEstimator mc(g);
    EstimateOptions opts;
    opts.num_samples = 12000;
    opts.seed = seed;
    EXPECT_NEAR(mc.Estimate({0, 7}, opts)->reliability, exact,
                SamplingTolerance(exact, 12000, 4.5))
        << seed;
  }
}

TEST(MonteCarlo, HandlesProbabilityOneChains) {
  const UncertainGraph g = testing::GraphFromString("0 1 1\n1 2 1\n2 3 1\n");
  MonteCarloEstimator mc(g);
  EstimateOptions opts;
  opts.num_samples = 50;
  EXPECT_DOUBLE_EQ(mc.Estimate({0, 3}, opts)->reliability, 1.0);
}

TEST(MonteCarlo, PrepareForNextQueryIsNoOp) {
  const UncertainGraph g = LineGraph3();
  MonteCarloEstimator mc(g);
  EXPECT_TRUE(mc.PrepareForNextQuery(1).ok());
}

}  // namespace
}  // namespace relcomp
