#include "reliability/estimator_factory.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace relcomp {
namespace {

TEST(Factory, BuildsAllKinds) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 1);
  const EstimatorKind kinds[] = {
      EstimatorKind::kMonteCarlo,        EstimatorKind::kBfsSharing,
      EstimatorKind::kProbTree,          EstimatorKind::kLazyPropagationPlus,
      EstimatorKind::kRecursive,         EstimatorKind::kRecursiveStratified,
      EstimatorKind::kLazyPropagation,   EstimatorKind::kProbTreeLpPlus,
      EstimatorKind::kProbTreeRhh,       EstimatorKind::kProbTreeRss,
  };
  for (EstimatorKind kind : kinds) {
    Result<std::unique_ptr<Estimator>> est = MakeEstimator(kind, g);
    ASSERT_TRUE(est.ok()) << EstimatorKindName(kind);
    EXPECT_EQ(std::string((*est)->name()), EstimatorKindName(kind));
    EXPECT_EQ(&(*est)->graph(), &g);
  }
}

TEST(Factory, TheSixAreInPaperOrder) {
  const std::vector<EstimatorKind> six = TheSixEstimators();
  ASSERT_EQ(six.size(), 6u);
  EXPECT_EQ(six[0], EstimatorKind::kMonteCarlo);
  EXPECT_EQ(six[1], EstimatorKind::kBfsSharing);
  EXPECT_EQ(six[2], EstimatorKind::kProbTree);
  EXPECT_EQ(six[3], EstimatorKind::kLazyPropagationPlus);
  EXPECT_EQ(six[4], EstimatorKind::kRecursive);
  EXPECT_EQ(six[5], EstimatorKind::kRecursiveStratified);
}

TEST(Factory, OptionsArePropagated) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 2);
  FactoryOptions options;
  options.bfs_sharing.index_samples = 64;
  Result<std::unique_ptr<Estimator>> est =
      MakeEstimator(EstimatorKind::kBfsSharing, g, options);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 65;  // above the configured L
  EXPECT_FALSE((*est)->Estimate({0, 1}, opts).ok());
  opts.num_samples = 64;
  EXPECT_TRUE((*est)->Estimate({0, 1}, opts).ok());
}

TEST(Factory, IndexSeedControlsBfsSharingWorlds) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.3, 0.7, 3);
  FactoryOptions a;
  a.index_seed = 1;
  FactoryOptions b;
  b.index_seed = 1;
  FactoryOptions c;
  c.index_seed = 2;
  EstimateOptions opts;
  opts.num_samples = 500;
  const double ra =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, a))->Estimate({0, 10}, opts)
          ->reliability;
  const double rb =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, b))->Estimate({0, 10}, opts)
          ->reliability;
  const double rc =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, c))->Estimate({0, 10}, opts)
          ->reliability;
  EXPECT_DOUBLE_EQ(ra, rb);
  (void)rc;  // rc may coincide by chance; only equality of a/b is guaranteed
}

TEST(Factory, ReplicasShareOneImmutableIndex) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 4);
  FactoryOptions options;
  options.bfs_sharing.index_samples = 256;

  for (EstimatorKind kind :
       {EstimatorKind::kBfsSharing, EstimatorKind::kProbTree,
        EstimatorKind::kProbTreeRss}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto replicas = MakeEstimatorReplicas(kind, g, 4, options).MoveValue();
    ASSERT_EQ(replicas.size(), 4u);
    const void* identity = replicas[0]->SharedIndexIdentity();
    ASSERT_NE(identity, nullptr);
    for (const auto& replica : replicas) {
      EXPECT_EQ(replica->SharedIndexIdentity(), identity);
      EXPECT_EQ(replica->SharedIndexBytes(), replicas[0]->IndexMemoryBytes());
    }
    // Deduped footprint: one index, zero replica-private index bytes.
    const IndexMemoryReport report = ReportIndexMemory(replicas);
    EXPECT_EQ(report.shared_indexes, 1u);
    EXPECT_EQ(report.shared_bytes, replicas[0]->IndexMemoryBytes());
    EXPECT_EQ(report.replica_bytes, 0u);
  }
}

TEST(Factory, BfsSharingReplicaPathBuildsIndexOnce) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 5);
  FactoryOptions options;
  options.bfs_sharing.index_samples = 128;
  const uint64_t builds_before = BfsSharingIndex::BuildCount();
  auto replicas =
      MakeEstimatorReplicas(EstimatorKind::kBfsSharing, g, 8, options)
          .MoveValue();
  EXPECT_EQ(BfsSharingIndex::BuildCount() - builds_before, 1u);

  // Replicas answer bit-identically off the shared worlds.
  EstimateOptions opts;
  opts.num_samples = 128;
  const double expected =
      replicas[0]->Estimate({0, 10}, opts)->reliability;
  for (size_t i = 1; i < replicas.size(); ++i) {
    EXPECT_DOUBLE_EQ(replicas[i]->Estimate({0, 10}, opts)->reliability,
                     expected);
  }
}

TEST(Factory, IndexFreeKindsReportNoSharedIndex) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 6);
  auto replicas =
      MakeEstimatorReplicas(EstimatorKind::kMonteCarlo, g, 3).MoveValue();
  for (const auto& replica : replicas) {
    EXPECT_EQ(replica->SharedIndexIdentity(), nullptr);
    EXPECT_EQ(replica->SharedIndexBytes(), 0u);
  }
  const IndexMemoryReport report = ReportIndexMemory(replicas);
  EXPECT_EQ(report.shared_indexes, 0u);
  EXPECT_EQ(report.total_bytes(), 0u);
}

TEST(Factory, NamesAreUnique) {
  std::set<std::string> names;
  for (EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing,
        EstimatorKind::kProbTree, EstimatorKind::kLazyPropagationPlus,
        EstimatorKind::kRecursive, EstimatorKind::kRecursiveStratified,
        EstimatorKind::kLazyPropagation, EstimatorKind::kProbTreeLpPlus,
        EstimatorKind::kProbTreeRhh, EstimatorKind::kProbTreeRss}) {
    EXPECT_TRUE(names.insert(EstimatorKindName(kind)).second);
  }
}

}  // namespace
}  // namespace relcomp
