#include "reliability/estimator_factory.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace relcomp {
namespace {

TEST(Factory, BuildsAllKinds) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 1);
  const EstimatorKind kinds[] = {
      EstimatorKind::kMonteCarlo,        EstimatorKind::kBfsSharing,
      EstimatorKind::kProbTree,          EstimatorKind::kLazyPropagationPlus,
      EstimatorKind::kRecursive,         EstimatorKind::kRecursiveStratified,
      EstimatorKind::kLazyPropagation,   EstimatorKind::kProbTreeLpPlus,
      EstimatorKind::kProbTreeRhh,       EstimatorKind::kProbTreeRss,
  };
  for (EstimatorKind kind : kinds) {
    Result<std::unique_ptr<Estimator>> est = MakeEstimator(kind, g);
    ASSERT_TRUE(est.ok()) << EstimatorKindName(kind);
    EXPECT_EQ(std::string((*est)->name()), EstimatorKindName(kind));
    EXPECT_EQ(&(*est)->graph(), &g);
  }
}

TEST(Factory, TheSixAreInPaperOrder) {
  const std::vector<EstimatorKind> six = TheSixEstimators();
  ASSERT_EQ(six.size(), 6u);
  EXPECT_EQ(six[0], EstimatorKind::kMonteCarlo);
  EXPECT_EQ(six[1], EstimatorKind::kBfsSharing);
  EXPECT_EQ(six[2], EstimatorKind::kProbTree);
  EXPECT_EQ(six[3], EstimatorKind::kLazyPropagationPlus);
  EXPECT_EQ(six[4], EstimatorKind::kRecursive);
  EXPECT_EQ(six[5], EstimatorKind::kRecursiveStratified);
}

TEST(Factory, OptionsArePropagated) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.2, 0.8, 2);
  FactoryOptions options;
  options.bfs_sharing.index_samples = 64;
  Result<std::unique_ptr<Estimator>> est =
      MakeEstimator(EstimatorKind::kBfsSharing, g, options);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 65;  // above the configured L
  EXPECT_FALSE((*est)->Estimate({0, 1}, opts).ok());
  opts.num_samples = 64;
  EXPECT_TRUE((*est)->Estimate({0, 1}, opts).ok());
}

TEST(Factory, IndexSeedControlsBfsSharingWorlds) {
  const UncertainGraph g = testing::RandomSmallGraph(20, 60, 0.3, 0.7, 3);
  FactoryOptions a;
  a.index_seed = 1;
  FactoryOptions b;
  b.index_seed = 1;
  FactoryOptions c;
  c.index_seed = 2;
  EstimateOptions opts;
  opts.num_samples = 500;
  const double ra =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, a))->Estimate({0, 10}, opts)
          ->reliability;
  const double rb =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, b))->Estimate({0, 10}, opts)
          ->reliability;
  const double rc =
      (*MakeEstimator(EstimatorKind::kBfsSharing, g, c))->Estimate({0, 10}, opts)
          ->reliability;
  EXPECT_DOUBLE_EQ(ra, rb);
  (void)rc;  // rc may coincide by chance; only equality of a/b is guaranteed
}

TEST(Factory, NamesAreUnique) {
  std::set<std::string> names;
  for (EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing,
        EstimatorKind::kProbTree, EstimatorKind::kLazyPropagationPlus,
        EstimatorKind::kRecursive, EstimatorKind::kRecursiveStratified,
        EstimatorKind::kLazyPropagation, EstimatorKind::kProbTreeLpPlus,
        EstimatorKind::kProbTreeRhh, EstimatorKind::kProbTreeRss}) {
    EXPECT_TRUE(names.insert(EstimatorKindName(kind)).second);
  }
}

}  // namespace
}  // namespace relcomp
