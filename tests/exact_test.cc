#include "reliability/exact.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;

TEST(ExactEnumeration, LineGraphIsProductOfProbs) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  const Result<double> r = ExactReliabilityEnumeration(g, 0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.5 * 0.25, 1e-12);
}

TEST(ExactEnumeration, SingleEdge) {
  const UncertainGraph g = GraphFromString("0 1 0.37\n");
  EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 1), 0.37, 1e-12);
}

TEST(ExactEnumeration, SourceEqualsTarget) {
  const UncertainGraph g = LineGraph3();
  EXPECT_DOUBLE_EQ(*ExactReliabilityEnumeration(g, 1, 1), 1.0);
}

TEST(ExactEnumeration, UnreachableTargetIsZero) {
  // Edges point away from t.
  const UncertainGraph g = GraphFromString("1 0 0.9\n2 1 0.9\n");
  EXPECT_DOUBLE_EQ(*ExactReliabilityEnumeration(g, 0, 2), 0.0);
}

TEST(ExactEnumeration, DiamondClosedForm) {
  for (const double p : {0.1, 0.3, 0.5, 0.9}) {
    const UncertainGraph g = DiamondGraph(p);
    const double expected = 1.0 - (1.0 - p * p) * (1.0 - p * p);
    EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 3), expected, 1e-12)
        << "p=" << p;
  }
}

TEST(ExactEnumeration, ParallelEdgesUnion) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(0, 1, 0.5).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 1), 0.75, 1e-12);
}

TEST(ExactEnumeration, DirectionMatters) {
  const UncertainGraph g = GraphFromString("0 1 0.8\n");
  EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 1), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(*ExactReliabilityEnumeration(g, 1, 0), 0.0);
}

TEST(ExactEnumeration, RejectsLargeGraphs) {
  const UncertainGraph g = RandomSmallGraph(20, 40, 0.2, 0.9, 1);
  const Result<double> r = ExactReliabilityEnumeration(g, 0, 1, /*max_edges=*/30);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ExactEnumeration, RejectsInvalidNodes) {
  const UncertainGraph g = LineGraph3();
  EXPECT_FALSE(ExactReliabilityEnumeration(g, 0, 99).ok());
  EXPECT_FALSE(ExactReliabilityEnumeration(g, 99, 0).ok());
}

TEST(ExactFactoring, MatchesClosedForms) {
  EXPECT_NEAR(*ExactReliabilityFactoring(LineGraph3(0.5, 0.25), 0, 2), 0.125,
              1e-12);
  EXPECT_NEAR(*ExactReliabilityFactoring(DiamondGraph(0.4), 0, 3),
              1.0 - (1.0 - 0.16) * (1.0 - 0.16), 1e-12);
}

TEST(ExactFactoring, SourceEqualsTarget) {
  EXPECT_DOUBLE_EQ(*ExactReliabilityFactoring(LineGraph3(), 2, 2), 1.0);
}

TEST(ExactFactoring, AgreesWithEnumerationOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const UncertainGraph g = RandomSmallGraph(6, 12, 0.05, 0.95, seed);
    const Result<double> by_enum = ExactReliabilityEnumeration(g, 0, 5);
    const Result<double> by_factoring = ExactReliabilityFactoring(g, 0, 5);
    ASSERT_TRUE(by_enum.ok());
    ASSERT_TRUE(by_factoring.ok());
    EXPECT_NEAR(*by_enum, *by_factoring, 1e-10) << "seed=" << seed;
  }
}

TEST(ExactFactoring, AgreesOnDenserGraphs) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    const UncertainGraph g = RandomSmallGraph(5, 18, 0.1, 0.9, seed);
    ASSERT_TRUE(g.num_edges() <= 26);
    EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 4),
                *ExactReliabilityFactoring(g, 0, 4), 1e-10)
        << "seed=" << seed;
  }
}

TEST(ExactFactoring, StepBudgetIsEnforced) {
  const UncertainGraph g = RandomSmallGraph(8, 24, 0.4, 0.6, 7);
  const Result<double> r = ExactReliabilityFactoring(g, 0, 7, /*max_steps=*/3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ExactFactoring, HandlesCyclesExactly) {
  // 0 <-> 1 -> 2 with a back-edge 2 -> 0; the cycle must not trap the
  // recursion.
  const UncertainGraph g =
      GraphFromString("0 1 0.5\n1 0 0.5\n1 2 0.5\n2 0 0.5\n");
  EXPECT_NEAR(*ExactReliabilityEnumeration(g, 0, 2),
              *ExactReliabilityFactoring(g, 0, 2), 1e-12);
}

}  // namespace
}  // namespace relcomp
