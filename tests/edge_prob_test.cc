#include "graph/edge_prob.h"

#include <cmath>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

Topology SmallPairedTopology(uint32_t n, Rng& rng) {
  return MakeErdosRenyi(n, 6.0, /*bidirected=*/true, rng);
}

double Mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

TEST(InverseOutDegree, ProbIsOneOverOutDegree) {
  Topology topo;
  topo.num_nodes = 4;
  topo.edges = {{0, 1}, {0, 2}, {0, 3}, {1, 0}};
  const std::vector<double> probs = InverseOutDegreeProbs(topo);
  EXPECT_DOUBLE_EQ(probs[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(probs[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(probs[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(probs[3], 1.0);
}

TEST(InverseOutDegree, AllInUnitInterval) {
  Rng rng(1);
  const Topology topo = MakeBarabasiAlbert(500, 2, true, rng);
  for (double p : InverseOutDegreeProbs(topo)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Categorical, OnlyDrawsFromChoices) {
  Rng topo_rng(2);
  const Topology topo = SmallPairedTopology(300, topo_rng);
  Rng rng(3);
  const std::vector<double> probs = CategoricalProbs(topo, {0.1, 0.01, 0.001}, rng);
  for (double p : probs) {
    EXPECT_TRUE(p == 0.1 || p == 0.01 || p == 0.001) << p;
  }
}

TEST(Categorical, PairedEdgesShareValue) {
  Rng topo_rng(4);
  const Topology topo = SmallPairedTopology(300, topo_rng);
  Rng rng(5);
  const std::vector<double> probs = CategoricalProbs(topo, {0.1, 0.01, 0.001}, rng);
  for (size_t i = 0; i + 1 < probs.size(); i += 2) {
    EXPECT_DOUBLE_EQ(probs[i], probs[i + 1]);
  }
}

TEST(Categorical, MeanNearNetHeptProfile) {
  // Paper Table 2: NetHEPT mean 0.04 (uniform over {0.1, 0.01, 0.001}).
  Rng topo_rng(6);
  const Topology topo = SmallPairedTopology(3000, topo_rng);
  Rng rng(7);
  const std::vector<double> probs = CategoricalProbs(topo, {0.1, 0.01, 0.001}, rng);
  EXPECT_NEAR(Mean(probs), 0.037, 0.006);
}

TEST(SnapshotRatio, InUnitIntervalAndPositive) {
  Rng topo_rng(8);
  const Topology topo = SmallPairedTopology(500, topo_rng);
  Rng rng(9);
  const std::vector<double> probs =
      SnapshotRatioProbs(topo, SnapshotModelOptions{}, rng);
  for (double p : probs) {
    EXPECT_GT(p, 0.0);  // first observation always counts
    EXPECT_LE(p, 1.0);
  }
}

TEST(SnapshotRatio, MatchesAsTopologyProfile) {
  // Paper Table 2: AS Topology 0.23 +/- 0.20.
  Rng topo_rng(10);
  const Topology topo = SmallPairedTopology(4000, topo_rng);
  Rng rng(11);
  const std::vector<double> probs =
      SnapshotRatioProbs(topo, SnapshotModelOptions{}, rng);
  const double mean = Mean(probs);
  double sq = 0.0;
  for (double p : probs) sq += (p - mean) * (p - mean);
  const double sd = std::sqrt(sq / static_cast<double>(probs.size()));
  EXPECT_NEAR(mean, 0.23, 0.05);
  EXPECT_NEAR(sd, 0.20, 0.05);
}

TEST(CollaborationCounts, AtLeastOneAndPaired) {
  Rng topo_rng(12);
  const Topology topo = SmallPairedTopology(500, topo_rng);
  Rng rng(13);
  const std::vector<uint32_t> counts = CollaborationCounts(topo, 1.2, rng);
  ASSERT_EQ(counts.size(), topo.num_edges());
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], 1u);
    if (i % 2 == 1) {
      EXPECT_EQ(counts[i], counts[i - 1]);
    }
  }
}

TEST(CollaborationCounts, MeanMatchesParameter) {
  Rng topo_rng(14);
  const Topology topo = SmallPairedTopology(4000, topo_rng);
  Rng rng(15);
  const std::vector<uint32_t> counts = CollaborationCounts(topo, 1.2, rng);
  double sum = 0.0;
  for (uint32_t c : counts) sum += c;
  EXPECT_NEAR(sum / static_cast<double>(counts.size()), 2.2, 0.1);
}

TEST(CollaborationExpCdf, FormulaAndMuKnob) {
  const std::vector<uint32_t> counts = {1, 5, 20};
  const std::vector<double> probs5 = CollaborationExpCdfProbs(counts, 5.0);
  EXPECT_NEAR(probs5[0], 1.0 - std::exp(-0.2), 1e-12);
  EXPECT_NEAR(probs5[1], 1.0 - std::exp(-1.0), 1e-12);
  const std::vector<double> probs20 = CollaborationExpCdfProbs(counts, 20.0);
  // Larger mu => smaller probabilities (DBLP 0.05 vs DBLP 0.2).
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LT(probs20[i], probs5[i]);
  }
}

TEST(CollaborationExpCdf, MatchesDblpProfiles) {
  // Paper Table 2: DBLP 0.2 mean 0.33, DBLP 0.05 mean 0.11.
  Rng topo_rng(16);
  const Topology topo = SmallPairedTopology(4000, topo_rng);
  Rng rng(17);
  const std::vector<uint32_t> counts = CollaborationCounts(topo, 1.2, rng);
  EXPECT_NEAR(Mean(CollaborationExpCdfProbs(counts, 5.0)), 0.33, 0.05);
  EXPECT_NEAR(Mean(CollaborationExpCdfProbs(counts, 20.0)), 0.11, 0.03);
}

TEST(ThreeCriteria, InUnitIntervalWithBioMineMean) {
  // Paper Table 2: BioMine 0.27 +/- 0.21.
  Rng topo_rng(18);
  Topology topo = MakeBarabasiAlbert(3000, 3, /*bidirected=*/false, topo_rng);
  Rng rng(19);
  const std::vector<double> probs = ThreeCriteriaProbs(topo, rng);
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_NEAR(Mean(probs), 0.25, 0.06);
}

}  // namespace
}  // namespace relcomp
