// Oracle accuracy sweep: every estimator vs exact reliability on a grid of
// small random graphs (topology x probability regime x estimator), the
// core correctness property of the whole library.

#include <gtest/gtest.h>

#include "reliability/estimator_factory.h"
#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

struct AccuracyCase {
  EstimatorKind kind;
  double p_lo;
  double p_hi;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<AccuracyCase>& info) {
  std::string name = EstimatorKindName(info.param.kind);
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name + "_p" + std::to_string(static_cast<int>(info.param.p_lo * 100)) +
         "_" + std::to_string(static_cast<int>(info.param.p_hi * 100)) + "_s" +
         std::to_string(info.param.seed);
}

class EstimatorAccuracyTest : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(EstimatorAccuracyTest, MatchesExactWithinSamplingError) {
  const AccuracyCase& c = GetParam();
  const UncertainGraph g = RandomSmallGraph(7, 14, c.p_lo, c.p_hi, c.seed);
  const Result<double> exact = ExactReliabilityEnumeration(g, 0, 6);
  ASSERT_TRUE(exact.ok());

  FactoryOptions factory;
  factory.bfs_sharing.index_samples = 4000;  // cover the K used below
  Result<std::unique_ptr<Estimator>> estimator = MakeEstimator(c.kind, g, factory);
  ASSERT_TRUE(estimator.ok()) << estimator.status();

  // Average a few independent runs so the tolerance can be tight.
  constexpr uint32_t kSamples = 4000;
  constexpr uint32_t kRuns = 4;
  double sum = 0.0;
  for (uint32_t run = 0; run < kRuns; ++run) {
    (*estimator)->PrepareForNextQuery(c.seed * 1000 + run).CheckOK();
    EstimateOptions opts;
    opts.num_samples = kSamples;
    opts.seed = c.seed * 7919 + run;
    const Result<EstimateResult> result =
        (*estimator)->Estimate(ReliabilityQuery{0, 6}, opts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->reliability, 0.0);
    EXPECT_LE(result->reliability, 1.0);
    sum += result->reliability;
  }
  const double mean = sum / kRuns;
  const double tol = SamplingTolerance(*exact, kSamples * kRuns, /*z=*/4.5) +
                     0.004;  // small allowance for ProbTree w=2 aggregation
  EXPECT_NEAR(mean, *exact, tol)
      << "estimator=" << EstimatorKindName(c.kind) << " exact=" << *exact;
}

std::vector<AccuracyCase> MakeCases() {
  std::vector<AccuracyCase> cases;
  const std::vector<EstimatorKind> kinds = {
      EstimatorKind::kMonteCarlo,        EstimatorKind::kBfsSharing,
      EstimatorKind::kProbTree,          EstimatorKind::kLazyPropagationPlus,
      EstimatorKind::kRecursive,         EstimatorKind::kRecursiveStratified,
      EstimatorKind::kProbTreeLpPlus,    EstimatorKind::kProbTreeRhh,
      EstimatorKind::kProbTreeRss};
  const std::vector<std::pair<double, double>> regimes = {
      {0.05, 0.3},  // sparse/low-prob (NetHEPT-like)
      {0.3, 0.7},   // mid
      {0.6, 0.95},  // dense/high-prob (DBLP 0.2-like)
  };
  for (EstimatorKind kind : kinds) {
    for (const auto& [lo, hi] : regimes) {
      for (uint64_t seed : {11ull, 23ull}) {
        cases.push_back({kind, lo, hi, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(OracleSweep, EstimatorAccuracyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// --- Cross-estimator properties on fixed graphs -----------------------------

class AllSixTest : public ::testing::TestWithParam<EstimatorKind> {
 protected:
  static FactoryOptions BigIndexOptions() {
    FactoryOptions factory;
    factory.bfs_sharing.index_samples = 8000;
    return factory;
  }
};

TEST_P(AllSixTest, LineGraphProduct) {
  const UncertainGraph g = LineGraph3(0.6, 0.7);
  Result<std::unique_ptr<Estimator>> est =
      MakeEstimator(GetParam(), g, BigIndexOptions());
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 8000;
  opts.seed = 5;
  const double r = (*est)->Estimate({0, 2}, opts)->reliability;
  EXPECT_NEAR(r, 0.42, SamplingTolerance(0.42, 8000, 4.5));
}

TEST_P(AllSixTest, DiamondClosedForm) {
  const UncertainGraph g = DiamondGraph(0.5);
  Result<std::unique_ptr<Estimator>> est =
      MakeEstimator(GetParam(), g, BigIndexOptions());
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 8000;
  opts.seed = 17;
  const double expected = 1.0 - (1.0 - 0.25) * (1.0 - 0.25);
  const double r = (*est)->Estimate({0, 3}, opts)->reliability;
  EXPECT_NEAR(r, expected, SamplingTolerance(expected, 8000, 4.5));
}

TEST_P(AllSixTest, SourceEqualsTargetIsOne) {
  const UncertainGraph g = DiamondGraph(0.2);
  Result<std::unique_ptr<Estimator>> est = MakeEstimator(GetParam(), g);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 50;
  EXPECT_DOUBLE_EQ((*est)->Estimate({2, 2}, opts)->reliability, 1.0);
}

TEST_P(AllSixTest, UnreachableTargetIsZero) {
  // Node 4 has no incoming edges.
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.9).CheckOK();
  b.AddEdge(1, 2, 0.9).CheckOK();
  b.AddEdge(4, 3, 0.9).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  Result<std::unique_ptr<Estimator>> est = MakeEstimator(GetParam(), g);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 300;
  opts.seed = 3;
  EXPECT_DOUBLE_EQ((*est)->Estimate({0, 4}, opts)->reliability, 0.0);
}

TEST_P(AllSixTest, DeterministicForEqualSeeds) {
  const UncertainGraph g = RandomSmallGraph(10, 25, 0.2, 0.8, 77);
  Result<std::unique_ptr<Estimator>> est = MakeEstimator(GetParam(), g);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 500;
  opts.seed = 1234;
  const double r1 = (*est)->Estimate({0, 9}, opts)->reliability;
  const double r2 = (*est)->Estimate({0, 9}, opts)->reliability;
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST_P(AllSixTest, RejectsInvalidQueries) {
  const UncertainGraph g = DiamondGraph(0.5);
  Result<std::unique_ptr<Estimator>> est = MakeEstimator(GetParam(), g);
  ASSERT_TRUE(est.ok());
  EstimateOptions opts;
  opts.num_samples = 10;
  EXPECT_FALSE((*est)->Estimate({0, 99}, opts).ok());
  EXPECT_FALSE((*est)->Estimate({99, 0}, opts).ok());
  opts.num_samples = 0;
  EXPECT_FALSE((*est)->Estimate({0, 3}, opts).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, AllSixTest, ::testing::ValuesIn(TheSixEstimators()),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      std::string name = EstimatorKindName(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

}  // namespace
}  // namespace relcomp
