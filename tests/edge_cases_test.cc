// Pathological-input coverage across the whole stack: degenerate graphs,
// extreme probabilities, hubs, deep chains, and disconnected structures.

#include <gtest/gtest.h>

#include "reliability/estimator_factory.h"
#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::GraphFromString;
using testing::SamplingTolerance;

class EdgeCaseSweep : public ::testing::TestWithParam<EstimatorKind> {
 protected:
  std::unique_ptr<Estimator> Make(const UncertainGraph& g) {
    FactoryOptions factory;
    factory.bfs_sharing.index_samples = 4000;
    Result<std::unique_ptr<Estimator>> est = MakeEstimator(GetParam(), g, factory);
    EXPECT_TRUE(est.ok()) << est.status();
    return est.MoveValue();
  }

  double Estimate(Estimator& est, NodeId s, NodeId t, uint32_t k = 4000,
                  uint64_t seed = 11) {
    EstimateOptions opts;
    opts.num_samples = k;
    opts.seed = seed;
    const Result<EstimateResult> r = est.Estimate({s, t}, opts);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->reliability : -1.0;
  }
};

TEST_P(EdgeCaseSweep, TwoIsolatedNodes) {
  GraphBuilder b(2);
  const UncertainGraph g = b.Build().MoveValue();
  auto est = Make(g);
  EXPECT_DOUBLE_EQ(Estimate(*est, 0, 1, 100), 0.0);
  EXPECT_DOUBLE_EQ(Estimate(*est, 0, 0, 100), 1.0);
}

TEST_P(EdgeCaseSweep, SelfLoopsAreHarmless) {
  const UncertainGraph g = GraphFromString("0 0 0.9\n0 1 0.5\n1 1 0.1\n");
  auto est = Make(g);
  EXPECT_NEAR(Estimate(*est, 0, 1), 0.5, SamplingTolerance(0.5, 4000, 5.0));
}

TEST_P(EdgeCaseSweep, AllCertainEdges) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 1\n2 3 1\n3 4 1\n");
  auto est = Make(g);
  EXPECT_DOUBLE_EQ(Estimate(*est, 0, 4, 200), 1.0);
}

TEST_P(EdgeCaseSweep, NearZeroProbabilityChain) {
  const UncertainGraph g = GraphFromString("0 1 0.001\n1 2 0.001\n");
  auto est = Make(g);
  // True reliability 1e-6: any estimate above ~1e-3 would be a bug.
  EXPECT_LT(Estimate(*est, 0, 2, 4000), 5e-3);
}

TEST_P(EdgeCaseSweep, HubFanInFanOut) {
  // 10 sources -> hub -> 10 sinks; query crosses the hub.
  GraphBuilder b(21);
  for (NodeId v = 0; v < 10; ++v) b.AddEdge(v, 10, 0.6).CheckOK();
  for (NodeId v = 11; v < 21; ++v) b.AddEdge(10, v, 0.6).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  const double exact = 0.36;
  auto est = Make(g);
  EXPECT_NEAR(Estimate(*est, 0, 15), exact, SamplingTolerance(exact, 4000, 5.0));
}

TEST_P(EdgeCaseSweep, LongChainWithModerateProbs) {
  // 12-edge chain of p=0.9: R = 0.9^12 ~= 0.2824.
  GraphBuilder b(13);
  for (NodeId v = 0; v < 12; ++v) b.AddEdge(v, v + 1, 0.9).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  const double exact = std::pow(0.9, 12);
  auto est = Make(g);
  EXPECT_NEAR(Estimate(*est, 0, 12), exact,
              SamplingTolerance(exact, 4000, 5.0) + 0.01);
}

TEST_P(EdgeCaseSweep, DenseBidirectedClique) {
  // K6 with p = 0.3 both directions: heavy cycles stress cascading updates
  // and recursive conditioning alike.
  GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.AddBidirectedEdge(u, v, 0.3).CheckOK();
  }
  const UncertainGraph g = b.Build().MoveValue();
  const double exact = *ExactReliabilityFactoring(g, 0, 5);
  auto est = Make(g);
  EXPECT_NEAR(Estimate(*est, 0, 5), exact,
              SamplingTolerance(exact, 4000, 5.0) + 0.015);
}

TEST_P(EdgeCaseSweep, TargetInOtherComponent) {
  const UncertainGraph g = GraphFromString("0 1 0.9\n2 3 0.9\n");
  auto est = Make(g);
  EXPECT_DOUBLE_EQ(Estimate(*est, 0, 3, 300), 0.0);
}

TEST_P(EdgeCaseSweep, ReverseDirectionOnlyIsZero) {
  const UncertainGraph g = GraphFromString("1 0 0.99\n2 1 0.99\n");
  auto est = Make(g);
  EXPECT_DOUBLE_EQ(Estimate(*est, 0, 2, 300), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSix, EdgeCaseSweep, ::testing::ValuesIn(TheSixEstimators()),
    [](const ::testing::TestParamInfo<EstimatorKind>& info) {
      std::string name = EstimatorKindName(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

}  // namespace
}  // namespace relcomp
