#pragma once

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/uncertain_graph.h"

namespace relcomp::testing {

/// Builds a graph from "u v p" lines; aborts the test on malformed input.
inline UncertainGraph GraphFromString(const std::string& edge_list) {
  Result<UncertainGraph> result = ParseEdgeListString(edge_list);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.MoveValue();
}

/// The paper's Figure 4 toy graph: 1 -> 2 -> 3 as a line (renumbered 0-2).
inline UncertainGraph LineGraph3(double p1 = 0.5, double p2 = 0.5) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, p1).CheckOK();
  b.AddEdge(1, 2, p2).CheckOK();
  return b.Build().MoveValue();
}

/// Two disjoint parallel s-t paths of length 2 (diamond):
/// 0 -> 1 -> 3 and 0 -> 2 -> 3. Exact R(0,3) = 1 - (1 - p^2)^2 for equal p.
inline UncertainGraph DiamondGraph(double p = 0.5) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, p).CheckOK();
  b.AddEdge(1, 3, p).CheckOK();
  b.AddEdge(0, 2, p).CheckOK();
  b.AddEdge(2, 3, p).CheckOK();
  return b.Build().MoveValue();
}

/// The paper's Figure 6(a) uncertain graph (7 nodes, used to validate the
/// ProbTree construction against the worked example).
///
/// Edges (directed pairs, both directions share the probability):
///   0-1: 0.5, 0-2: 0.75, 1-2: 0.5, 1-6: 0.75, 2-6: 0.5 (only 2->6... )
/// The figure is reproduced as a bidirected approximation of the drawing;
/// the key structural facts the tests rely on are bag {3,4}, bag {4,0,6},
/// and the 6->1 aggregation 1-(1-0.75)(1-0.5*0.5) = 0.8125.
inline UncertainGraph Figure6Graph() {
  GraphBuilder b(7);
  // 6 -> 1 direct with 0.75 and 6 -> 2 -> 1 with 0.5 * 0.5 (bag (D) example).
  b.AddEdge(6, 1, 0.75).CheckOK();
  b.AddEdge(6, 2, 0.5).CheckOK();
  b.AddEdge(2, 1, 0.5).CheckOK();
  b.AddEdge(1, 0, 0.75).CheckOK();
  b.AddEdge(0, 6, 0.25).CheckOK();   // absorbed with node 4's bag region
  b.AddEdge(0, 4, 0.75).CheckOK();
  b.AddEdge(4, 6, 0.81).CheckOK();
  b.AddEdge(3, 4, 0.5).CheckOK();    // node 3: degree 1, first bag
  b.AddEdge(1, 5, 0.75).CheckOK();   // node 5: degree 1
  // Node 2 keeps skeleton degree 2 ({1, 6}) so the decomposition forms the
  // paper's bag (D) covering 2 and aggregates 6 -> 1.
  return b.Build().MoveValue();
}

/// Random small digraph for oracle sweeps: n nodes, m edges, probabilities
/// uniform in [p_lo, p_hi].
inline UncertainGraph RandomSmallGraph(uint32_t n, uint32_t m, double p_lo,
                                       double p_hi, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  uint32_t added = 0;
  uint32_t guard = 0;
  while (added < m && guard < 100 * m + 100) {
    ++guard;
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    const double p = p_lo + (p_hi - p_lo) * rng.NextDouble();
    b.AddEdge(u, v, p).CheckOK();
    ++added;
  }
  return b.Build().MoveValue();
}

/// Binomial-style tolerance: z standard errors of a proportion estimate at
/// `k` samples (used to make oracle assertions tight but non-flaky).
inline double SamplingTolerance(double truth, uint32_t k, double z = 4.0) {
  const double variance = truth * (1.0 - truth) / static_cast<double>(k);
  return z * std::sqrt(variance) + 1e-9;
}

}  // namespace relcomp::testing
