#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;

std::vector<EdgeState> AllUndetermined(const UncertainGraph& g) {
  return std::vector<EdgeState>(g.num_edges(), EdgeState::kUndetermined);
}

TEST(SimplifyGraph, SourceEqualsTargetIsCertainOne) {
  const UncertainGraph g = LineGraph3();
  const auto result = SimplifyGraph(g, 1, 1, AllUndetermined(g));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, SimplifyOutcome::kCertainOne);
}

TEST(SimplifyGraph, IncludedPathIsCertainOne) {
  const UncertainGraph g = LineGraph3();
  std::vector<EdgeState> states = {EdgeState::kIncluded, EdgeState::kIncluded};
  const auto result = SimplifyGraph(g, 0, 2, states);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, SimplifyOutcome::kCertainOne);
}

TEST(SimplifyGraph, ExcludedCutIsCertainZero) {
  const UncertainGraph g = LineGraph3();
  std::vector<EdgeState> states = {EdgeState::kExcluded, EdgeState::kUndetermined};
  const auto result = SimplifyGraph(g, 0, 2, states);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, SimplifyOutcome::kCertainZero);
}

TEST(SimplifyGraph, UndeterminedLineIsReducedUnchangedInValue) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  const auto result = SimplifyGraph(g, 0, 2, AllUndetermined(g));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SimplifyOutcome::kReduced);
  const RootedGraph& rooted = result->rooted;
  EXPECT_NEAR(*ExactReliabilityEnumeration(rooted.graph, rooted.source,
                                           rooted.target),
              0.125, 1e-12);
}

TEST(SimplifyGraph, ContractsCertainComponentIntoSuperSource) {
  // 0 -(incl)-> 1 -> 2 : node 1 merges with the super-source.
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  std::vector<EdgeState> states = {EdgeState::kIncluded, EdgeState::kUndetermined};
  const auto result = SimplifyGraph(g, 0, 2, states);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SimplifyOutcome::kReduced);
  EXPECT_EQ(result->rooted.graph.num_nodes(), 2u);  // super-source + target
  ASSERT_EQ(result->rooted.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(result->rooted.graph.edge(0).prob, 0.25);
}

TEST(SimplifyGraph, IncludedEdgeOutsideCertainComponentBecomesProbOne) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  std::vector<EdgeState> states = {EdgeState::kUndetermined, EdgeState::kIncluded};
  const auto result = SimplifyGraph(g, 0, 2, states);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SimplifyOutcome::kReduced);
  bool saw_prob_one = false;
  for (EdgeId e = 0; e < result->rooted.graph.num_edges(); ++e) {
    saw_prob_one |= (result->rooted.graph.edge(e).prob == 1.0);
  }
  EXPECT_TRUE(saw_prob_one);
}

TEST(SimplifyGraph, PrunesNodesOffAllResidualPaths) {
  // Diamond plus a dangling branch 0 -> 4 -> 5 that cannot reach t = 3.
  GraphBuilder b(6);
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(1, 3, 0.5).CheckOK();
  b.AddEdge(0, 2, 0.5).CheckOK();
  b.AddEdge(2, 3, 0.5).CheckOK();
  b.AddEdge(0, 4, 0.5).CheckOK();
  b.AddEdge(4, 5, 0.5).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  const auto result = SimplifyGraph(g, 0, 3, AllUndetermined(g));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SimplifyOutcome::kReduced);
  EXPECT_EQ(result->rooted.graph.num_edges(), 4u);  // branch pruned
  EXPECT_EQ(result->rooted.graph.num_nodes(), 4u);
}

TEST(SimplifyGraph, DropsEdgesBackIntoCertainComponent) {
  // 0 <-> 1 bidirected, then 1 -> 2. Including 0->1 makes 1 certain; the
  // reverse edge 1->0 must disappear.
  const UncertainGraph g = GraphFromString("0 1 0.5\n1 0 0.5\n1 2 0.5\n");
  std::vector<EdgeState> states = {EdgeState::kIncluded, EdgeState::kUndetermined,
                                   EdgeState::kUndetermined};
  const auto result = SimplifyGraph(g, 0, 2, states);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, SimplifyOutcome::kReduced);
  EXPECT_EQ(result->rooted.graph.num_edges(), 1u);
}

TEST(SimplifyGraph, PreservesExactReliabilityOnRandomGraphs) {
  // Conditioning on nothing must preserve R(s, t) exactly (the core RSS
  // invariant: stratum simplification is value-preserving).
  for (uint64_t seed = 40; seed < 52; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 15, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 6);
    const auto result = SimplifyGraph(g, 0, 6, AllUndetermined(g));
    ASSERT_TRUE(result.ok());
    if (result->outcome == SimplifyOutcome::kCertainZero) {
      EXPECT_DOUBLE_EQ(exact, 0.0) << seed;
    } else if (result->outcome == SimplifyOutcome::kCertainOne) {
      EXPECT_DOUBLE_EQ(exact, 1.0) << seed;
    } else {
      const RootedGraph& rooted = result->rooted;
      EXPECT_NEAR(*ExactReliabilityEnumeration(rooted.graph, rooted.source,
                                               rooted.target),
                  exact, 1e-10)
          << seed;
    }
  }
}

TEST(SimplifyGraph, ConditionalDecompositionMatchesTotalProbability) {
  // R = P(e) R(incl e) + (1-P(e)) R(excl e) where each branch reliability is
  // computed on the simplified graph — the recursive estimators' backbone.
  for (uint64_t seed = 60; seed < 70; ++seed) {
    const UncertainGraph g = RandomSmallGraph(6, 12, 0.2, 0.8, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 5);
    std::vector<EdgeState> states = AllUndetermined(g);

    auto branch_value = [&](EdgeState st) {
      states[0] = st;
      const auto result = SimplifyGraph(g, 0, 5, states);
      states[0] = EdgeState::kUndetermined;
      EXPECT_TRUE(result.ok());
      switch (result->outcome) {
        case SimplifyOutcome::kCertainOne:
          return 1.0;
        case SimplifyOutcome::kCertainZero:
          return 0.0;
        case SimplifyOutcome::kReduced:
          return *ExactReliabilityEnumeration(result->rooted.graph,
                                              result->rooted.source,
                                              result->rooted.target);
      }
      return 0.0;
    };
    const double p = g.prob(0);
    const double combined = p * branch_value(EdgeState::kIncluded) +
                            (1.0 - p) * branch_value(EdgeState::kExcluded);
    EXPECT_NEAR(combined, exact, 1e-10) << seed;
  }
}

TEST(SimplifyGraph, ValidatesArguments) {
  const UncertainGraph g = LineGraph3();
  EXPECT_FALSE(SimplifyGraph(g, 0, 99, AllUndetermined(g)).ok());
  EXPECT_FALSE(SimplifyGraph(g, 0, 2, {}).ok());
}

}  // namespace
}  // namespace relcomp
