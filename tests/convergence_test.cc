#include "eval/convergence.h"

#include <gtest/gtest.h>

#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "reliability/mc_sampling.h"
#include "reliability/recursive_stratified.h"
#include "test_util.h"

namespace relcomp {
namespace {

std::vector<ReliabilityQuery> TinyWorkload(const UncertainGraph& g) {
  QueryGenOptions options;
  options.num_pairs = 6;
  options.seed = 5;
  return GenerateQueries(g, options).MoveValue();
}

TEST(MeasureAtK, ReturnsConsistentPoint) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 1).MoveValue();
  MonteCarloEstimator mc(d.graph);
  const std::vector<ReliabilityQuery> queries = TinyWorkload(d.graph);
  const Result<KPoint> point = MeasureAtK(mc, queries, 100, 8, 3);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->k, 100u);
  EXPECT_GE(point->avg_reliability, 0.0);
  EXPECT_LE(point->avg_reliability, 1.0);
  EXPECT_GE(point->avg_variance, 0.0);
  EXPECT_GT(point->avg_query_seconds, 0.0);
  EXPECT_EQ(point->per_pair_reliability.size(), queries.size());
}

TEST(MeasureAtK, DeterministicPerSeed) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 1).MoveValue();
  MonteCarloEstimator mc(d.graph);
  const std::vector<ReliabilityQuery> queries = TinyWorkload(d.graph);
  const KPoint a = MeasureAtK(mc, queries, 100, 5, 42).MoveValue();
  const KPoint b = MeasureAtK(mc, queries, 100, 5, 42).MoveValue();
  EXPECT_DOUBLE_EQ(a.avg_reliability, b.avg_reliability);
  EXPECT_DOUBLE_EQ(a.avg_variance, b.avg_variance);
}

TEST(MeasureAtK, ValidatesArguments) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 1).MoveValue();
  MonteCarloEstimator mc(d.graph);
  EXPECT_FALSE(MeasureAtK(mc, {}, 100, 5, 1).ok());
  const std::vector<ReliabilityQuery> queries = TinyWorkload(d.graph);
  EXPECT_FALSE(MeasureAtK(mc, queries, 100, 0, 1).ok());
}

TEST(RunConvergence, VarianceDecreasesWithK) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 2).MoveValue();
  MonteCarloEstimator mc(d.graph);
  ConvergenceOptions options;
  options.initial_k = 50;
  options.step_k = 200;
  options.max_k = 450;
  options.repeats = 12;
  options.dispersion_threshold = 0.0;  // never converge: trace the full curve
  options.stop_at_convergence = false;
  const ConvergenceReport report =
      RunConvergence(mc, TinyWorkload(d.graph), options).MoveValue();
  ASSERT_EQ(report.points.size(), 3u);
  // Binomial variance shrinks ~1/K; allow slack for noise.
  EXPECT_LT(report.points.back().avg_variance,
            report.points.front().avg_variance);
}

TEST(RunConvergence, StopsAtThreshold) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 3).MoveValue();
  MonteCarloEstimator mc(d.graph);
  ConvergenceOptions options;
  options.initial_k = 100;
  options.step_k = 100;
  options.max_k = 5000;
  options.repeats = 8;
  options.dispersion_threshold = 1.0;  // trivially satisfied at once
  const ConvergenceReport report =
      RunConvergence(mc, TinyWorkload(d.graph), options).MoveValue();
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.converged_k, 100u);
  EXPECT_EQ(report.points.size(), 1u);
}

TEST(RunConvergence, ReportsNonConvergenceWithinBudget) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 4).MoveValue();
  MonteCarloEstimator mc(d.graph);
  ConvergenceOptions options;
  options.initial_k = 50;
  options.step_k = 50;
  options.max_k = 150;
  options.repeats = 6;
  options.dispersion_threshold = 0.0;  // unreachable
  const ConvergenceReport report =
      RunConvergence(mc, TinyWorkload(d.graph), options).MoveValue();
  EXPECT_FALSE(report.converged());
  EXPECT_EQ(report.points.size(), 3u);
}

TEST(RunConvergence, FindKLocatesPoints) {
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 5).MoveValue();
  MonteCarloEstimator mc(d.graph);
  ConvergenceOptions options;
  options.initial_k = 50;
  options.step_k = 50;
  options.max_k = 100;
  options.repeats = 4;
  options.dispersion_threshold = 0.0;
  options.stop_at_convergence = false;
  const ConvergenceReport report =
      RunConvergence(mc, TinyWorkload(d.graph), options).MoveValue();
  ASSERT_NE(report.FindK(50), nullptr);
  ASSERT_NE(report.FindK(100), nullptr);
  EXPECT_EQ(report.FindK(75), nullptr);
  EXPECT_EQ(report.FindK(50)->k, 50u);
}

TEST(RunConvergence, RecursiveConvergesNoSlowerThanMc) {
  // The paper's headline: recursive estimators converge with fewer samples.
  const Dataset d = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 6).MoveValue();
  const std::vector<ReliabilityQuery> queries = TinyWorkload(d.graph);
  ConvergenceOptions options;
  options.initial_k = 100;
  options.step_k = 100;
  options.max_k = 3000;
  options.repeats = 15;
  options.dispersion_threshold = 2e-3;

  MonteCarloEstimator mc(d.graph);
  RssOptions rss_options;
  rss_options.num_strata = 20;
  RecursiveStratifiedEstimator rss(d.graph, rss_options);
  const ConvergenceReport mc_report =
      RunConvergence(mc, queries, options).MoveValue();
  const ConvergenceReport rss_report =
      RunConvergence(rss, queries, options).MoveValue();
  ASSERT_TRUE(mc_report.converged());
  ASSERT_TRUE(rss_report.converged());
  EXPECT_LE(rss_report.converged_k, mc_report.converged_k);
}

}  // namespace
}  // namespace relcomp
