#include "reliability/lazy_propagation.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "reliability/exact.h"
#include "reliability/mc_sampling.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(LazyPropagationPlus, MatchesClosedFormOnLine) {
  const UncertainGraph g = LineGraph3(0.5, 0.5);
  LazyPropagationEstimator lp(g);
  EstimateOptions opts;
  opts.num_samples = 20000;
  opts.seed = 2;
  EXPECT_NEAR(lp.Estimate({0, 2}, opts)->reliability, 0.25,
              SamplingTolerance(0.25, 20000));
}

TEST(LazyPropagationPlus, NameReflectsCorrection) {
  const UncertainGraph g = LineGraph3();
  LazyPropagationOptions corrected;
  corrected.corrected = true;
  LazyPropagationOptions original;
  original.corrected = false;
  EXPECT_EQ(std::string(LazyPropagationEstimator(g, corrected).name()), "LP+");
  EXPECT_EQ(std::string(LazyPropagationEstimator(g, original).name()), "LP");
}

TEST(LazyPropagationPlus, LowProbabilityEdgesStayRare) {
  const UncertainGraph g = GraphFromString("0 1 0.01\n");
  LazyPropagationEstimator lp(g);
  EstimateOptions opts;
  opts.num_samples = 50000;
  opts.seed = 3;
  EXPECT_NEAR(lp.Estimate({0, 1}, opts)->reliability, 0.01,
              SamplingTolerance(0.01, 50000, 5.0));
}

TEST(LazyPropagationPlus, ProbabilityOneEdgesAlwaysFire) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 1\n");
  LazyPropagationEstimator lp(g);
  EstimateOptions opts;
  opts.num_samples = 200;
  EXPECT_DOUBLE_EQ(lp.Estimate({0, 2}, opts)->reliability, 1.0);
}

TEST(LazyPropagation, BuggyVariantSurvivesProbabilityOneEdges) {
  // Regression: the uncorrected re-arm with Geometric(1.0) == 0 must not
  // re-fire within the same round forever.
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 0.5\n");
  LazyPropagationOptions original;
  original.corrected = false;
  LazyPropagationEstimator lp(g, original);
  EstimateOptions opts;
  opts.num_samples = 2000;
  opts.seed = 5;
  const double r = lp.Estimate({0, 2}, opts)->reliability;
  EXPECT_GT(r, 0.3);
  EXPECT_LE(r, 1.0);
}

TEST(LazyPropagation, OriginalOverestimatesOnMultiHopPaths) {
  // Figure 5 / Example 1: the original re-arm double-probes edges, inflating
  // reliability well above the exact value; LP+ does not.
  const UncertainGraph g = RandomSmallGraph(9, 22, 0.15, 0.5, 71);
  const double exact = *ExactReliabilityEnumeration(g, 0, 8);
  if (exact <= 0.02 || exact >= 0.9) GTEST_SKIP() << "degenerate instance";

  LazyPropagationOptions original;
  original.corrected = false;
  LazyPropagationEstimator lp(g, original);
  LazyPropagationEstimator lp_plus(g);
  double lp_sum = 0.0;
  double lp_plus_sum = 0.0;
  constexpr int kRuns = 6;
  constexpr uint32_t kK = 4000;
  for (int i = 0; i < kRuns; ++i) {
    EstimateOptions opts;
    opts.num_samples = kK;
    opts.seed = 100 + i;
    lp_sum += lp.Estimate({0, 8}, opts)->reliability;
    lp_plus_sum += lp_plus.Estimate({0, 8}, opts)->reliability;
  }
  const double lp_mean = lp_sum / kRuns;
  const double lp_plus_mean = lp_plus_sum / kRuns;
  EXPECT_NEAR(lp_plus_mean, exact, SamplingTolerance(exact, kK * kRuns, 5.0));
  EXPECT_GT(lp_mean, exact + 0.02);  // clear over-estimation
  EXPECT_GT(lp_mean, lp_plus_mean);
}

TEST(LazyPropagationPlus, StateStaysConsistentAcrossEarlyTerminations) {
  // t adjacent to s: every sample terminates early; the lazy heaps must keep
  // producing correct marginals for thousands of rounds.
  const UncertainGraph g = GraphFromString("0 1 0.3\n0 2 0.9\n2 1 0.5\n");
  const double exact = *ExactReliabilityEnumeration(g, 0, 1);
  LazyPropagationEstimator lp(g);
  EstimateOptions opts;
  opts.num_samples = 40000;
  opts.seed = 8;
  EXPECT_NEAR(lp.Estimate({0, 1}, opts)->reliability, exact,
              SamplingTolerance(exact, 40000, 5.0));
}

TEST(LazyPropagationPlus, VarianceMatchesMonteCarlo) {
  // Statistically equivalent to MC [30]: same variance up to noise.
  const UncertainGraph g = DiamondGraph(0.5);
  MonteCarloEstimator mc(g);
  LazyPropagationEstimator lp(g);
  RunningStats mc_stats;
  RunningStats lp_stats;
  constexpr uint32_t kK = 150;
  constexpr int kRepeats = 400;
  for (int i = 0; i < kRepeats; ++i) {
    EstimateOptions opts;
    opts.num_samples = kK;
    opts.seed = 5000 + i;
    mc_stats.Add(mc.Estimate({0, 3}, opts)->reliability);
    lp_stats.Add(lp.Estimate({0, 3}, opts)->reliability);
  }
  EXPECT_NEAR(lp_stats.mean(), mc_stats.mean(), 0.012);
  EXPECT_NEAR(lp_stats.SampleVariance(), mc_stats.SampleVariance(),
              mc_stats.SampleVariance() * 0.5);
}

TEST(LazyPropagationPlus, AgreesWithExactAcrossGraphs) {
  for (uint64_t seed = 300; seed < 310; ++seed) {
    const UncertainGraph g = RandomSmallGraph(8, 18, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 7);
    LazyPropagationEstimator lp(g);
    EstimateOptions opts;
    opts.num_samples = 12000;
    opts.seed = seed;
    EXPECT_NEAR(lp.Estimate({0, 7}, opts)->reliability, exact,
                SamplingTolerance(exact, 12000, 4.5))
        << seed;
  }
}

TEST(LazyPropagationPlus, MemoryExceedsMonteCarlo) {
  // Section 3.6: LP+ adds per-node counters and heaps on top of MC's state.
  const UncertainGraph g = RandomSmallGraph(100, 500, 0.3, 0.9, 90);
  MonteCarloEstimator mc(g);
  LazyPropagationEstimator lp(g);
  EstimateOptions opts;
  opts.num_samples = 200;
  opts.seed = 4;
  const size_t mc_mem = mc.Estimate({0, 50}, opts)->peak_memory_bytes;
  const size_t lp_mem = lp.Estimate({0, 50}, opts)->peak_memory_bytes;
  EXPECT_GT(lp_mem, mc_mem);
}

}  // namespace
}  // namespace relcomp
