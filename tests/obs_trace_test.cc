#include "obs/trace.h"

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "test_util.h"

namespace relcomp::obs {
namespace {

using ::relcomp::testing::RandomSmallGraph;

TEST(TraceBufferTest, RecordsNestedSpans) {
  TraceBuffer buffer;
  buffer.Start(/*query_id=*/7, /*thread=*/3);
  const uint32_t root = buffer.BeginAt(SpanKind::kQuery, 100);
  const uint32_t child = buffer.BeginAt(SpanKind::kCacheProbe, 110, root);
  buffer.EndAt(child, 120);
  buffer.EndAt(root, 200);
  ASSERT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer[root].kind, SpanKind::kQuery);
  EXPECT_EQ(buffer[root].parent_id, TraceBuffer::kNone);
  EXPECT_EQ(buffer[root].query_id, 7u);
  EXPECT_EQ(buffer[root].thread, 3u);
  EXPECT_EQ(buffer[root].begin_ns, 100u);
  EXPECT_EQ(buffer[root].end_ns, 200u);
  EXPECT_EQ(buffer[child].parent_id, root);
  EXPECT_EQ(buffer[child].end_ns, 120u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, OverflowCountsDropsAndStaysSafe) {
  TraceBuffer buffer;
  buffer.Start(1, 0);
  for (uint32_t i = 0; i < TraceBuffer::kCapacity + 10; ++i) {
    const uint32_t span = buffer.Begin(SpanKind::kStratum, TraceBuffer::kNone,
                                       i);
    buffer.End(span);  // End(kNone) must be a no-op past capacity
  }
  EXPECT_EQ(buffer.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(buffer.dropped(), 10u);
  // Start re-arms for the next query.
  buffer.Start(2, 0);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, ScopedSpanOnNullBufferIsNoop) {
  ScopedSpan span(nullptr, SpanKind::kPrepare);
  EXPECT_EQ(span.id(), TraceBuffer::kNone);  // and no crash on destruction
}

TEST(TraceRingTest, WraparoundKeepsNewestSpans) {
  TraceRing ring(5);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceSpan span;
    span.query_id = i;
    span.begin_ns = i;
    span.end_ns = i + 1;
    ring.Publish(span);
  }
  EXPECT_EQ(ring.published(), 20u);
  const std::vector<TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest first, and only the newest 8 survive the wraparound.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].query_id, 12 + i);
  }
}

TEST(TracerTest, DisengagedByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.engaged());
  EXPECT_EQ(tracer.ring(), nullptr);
  EXPECT_FALSE(tracer.ShouldSample(1));
}

TEST(TracerTest, SamplingIsDeterministicInTheQueryId) {
  TracerOptions options;
  options.sample_rate = 0.5;
  Tracer a(options);
  Tracer b(options);
  ASSERT_TRUE(a.engaged());
  size_t sampled = 0;
  for (uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_EQ(a.ShouldSample(id), b.ShouldSample(id)) << "id " << id;
    if (a.ShouldSample(id)) ++sampled;
  }
  // A hash-based coin at rate 0.5 over 1000 ids lands well inside [350, 650].
  EXPECT_GT(sampled, 350u);
  EXPECT_LT(sampled, 650u);

  options.sample_rate = 1.0;
  Tracer always(options);
  for (uint64_t id = 1; id <= 100; ++id) EXPECT_TRUE(always.ShouldSample(id));
}

TEST(TracerTest, FinishPublishesSampledSpans) {
  TracerOptions options;
  options.sample_rate = 1.0;
  options.ring_capacity = 64;
  Tracer tracer(options);
  TraceBuffer buffer;
  buffer.Start(tracer.NextQueryId(), 0);
  const uint32_t root = buffer.BeginAt(SpanKind::kQuery, 10);
  buffer.EndAt(root, 20);
  tracer.Finish(buffer);
  EXPECT_EQ(tracer.sampled_queries(), 1u);
  ASSERT_NE(tracer.ring(), nullptr);
  const std::vector<TraceSpan> spans = tracer.ring()->Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kQuery);
}

TEST(TracerTest, SlowQueryLogFormatsSpanTrees) {
  TracerOptions options;
  options.slow_query_ms = 1e-6;  // everything is "slow"
  Tracer tracer(options);
  ASSERT_TRUE(tracer.engaged());
  TraceBuffer buffer;
  buffer.Start(tracer.NextQueryId(), 0);
  const uint32_t root = buffer.BeginAt(SpanKind::kQuery, 0);
  const uint32_t child = buffer.BeginAt(SpanKind::kEstimate, 1000, root);
  buffer.EndAt(child, 500000);
  buffer.EndAt(root, 1000000);
  tracer.Finish(buffer);
  EXPECT_EQ(tracer.slow_queries(), 1u);
  const std::vector<std::string> log = tracer.SlowQueryLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find(SpanKindName(SpanKind::kQuery)), std::string::npos);
  EXPECT_NE(log[0].find(SpanKindName(SpanKind::kEstimate)), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

std::vector<EngineQuery> MixedWorkload(NodeId num_nodes) {
  std::vector<EngineQuery> queries;
  for (NodeId t = 1; t < num_nodes && t < 12; ++t) {
    queries.push_back(EngineQuery::St(0, t));
  }
  queries.push_back(EngineQuery::TopK(0, 4));
  queries.push_back(EngineQuery::TopK(1, 3));
  queries.push_back(EngineQuery::ReliableSet(0, 0.4));
  return queries;
}

EngineOptions TracedOptions(size_t threads, double sample_rate) {
  EngineOptions options;
  options.num_threads = threads;
  options.num_samples = 200;
  options.num_strata = 4;
  options.seed = 20190410;
  options.trace_sample_rate = sample_rate;
  return options;
}

TEST(EngineTraceTest, UntracedEngineHasNoRing) {
  const UncertainGraph graph = RandomSmallGraph(16, 40, 0.3, 0.9, 2);
  auto engine = QueryEngine::Create(graph, TracedOptions(2, 0.0)).MoveValue();
  EXPECT_FALSE(engine->tracer().engaged());
  EXPECT_EQ(engine->tracer().ring(), nullptr);
  ASSERT_TRUE(engine->RunBatch(MixedWorkload(16)).ok());
  EXPECT_EQ(engine->tracer().sampled_queries(), 0u);
}

TEST(EngineTraceTest, SpanTreesAreWellFormedAtEveryThreadCount) {
  const UncertainGraph graph = RandomSmallGraph(20, 55, 0.2, 0.9, 9);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    auto engine =
        QueryEngine::Create(graph, TracedOptions(threads, 1.0)).MoveValue();
    const std::vector<EngineQuery> queries = MixedWorkload(20);
    ASSERT_TRUE(engine->RunBatch(queries).ok());
    EXPECT_GE(engine->tracer().sampled_queries(), queries.size())
        << threads << " threads";
    ASSERT_NE(engine->tracer().ring(), nullptr);
    const std::vector<TraceSpan> spans = engine->tracer().ring()->Snapshot();
    ASSERT_FALSE(spans.empty());

    // Group by query and index by span id; then every query's tree must have
    // exactly one root (kQuery, or kScout for warm-ahead sweeps), every
    // child must point at a resident parent, and time must be sane.
    std::map<uint64_t, std::map<uint32_t, TraceSpan>> by_query;
    for (const TraceSpan& span : spans) {
      by_query[span.query_id][span.span_id] = span;
    }
    EXPECT_GE(by_query.size(), queries.size()) << threads << " threads";
    for (const auto& [query_id, tree] : by_query) {
      size_t roots = 0;
      for (const auto& [span_id, span] : tree) {
        EXPECT_GE(span.end_ns, span.begin_ns)
            << "query " << query_id << " span " << span_id;
        if (span.parent_id == TraceBuffer::kNone) {
          ++roots;
          EXPECT_TRUE(span.kind == SpanKind::kQuery ||
                      span.kind == SpanKind::kScout)
              << "query " << query_id;
        } else {
          ASSERT_TRUE(tree.count(span.parent_id) != 0)
              << "query " << query_id << " span " << span_id
              << " has dangling parent " << span.parent_id;
          const TraceSpan& parent = tree.at(span.parent_id);
          EXPECT_GE(span.begin_ns, parent.begin_ns)
              << "query " << query_id << " span " << span_id;
        }
      }
      EXPECT_EQ(roots, 1u) << "query " << query_id;
    }
  }
}

void ExpectIdenticalResults(const std::vector<EngineResult>& a,
                            const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0)
        << "query " << i;
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size()) << "query " << i;
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node)
          << "query " << i << " target " << j;
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0)
          << "query " << i << " target " << j;
    }
    EXPECT_EQ(a[i].num_samples, b[i].num_samples) << "query " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "query " << i;
  }
}

TEST(EngineTraceTest, AnswersAreBitIdenticalTracingOnOrOff) {
  // Tracing must never be part of the determinism contract: full-rate
  // sampling plus the slow-query log yields bit-identical answers to a cold
  // untraced engine, at every thread count.
  const UncertainGraph graph = RandomSmallGraph(20, 55, 0.2, 0.9, 13);
  const std::vector<EngineQuery> queries = MixedWorkload(20);

  auto baseline_engine =
      QueryEngine::Create(graph, TracedOptions(1, 0.0)).MoveValue();
  const std::vector<EngineResult> baseline =
      baseline_engine->RunBatch(queries).MoveValue();

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    EngineOptions options = TracedOptions(threads, 1.0);
    options.slow_query_ms = 1e-3;  // exercise the slow-query path too
    auto traced = QueryEngine::Create(graph, options).MoveValue();
    const std::vector<EngineResult> results =
        traced->RunBatch(queries).MoveValue();
    ExpectIdenticalResults(baseline, results);
  }
}

}  // namespace
}  // namespace relcomp::obs
