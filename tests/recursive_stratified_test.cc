#include "reliability/recursive_stratified.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "reliability/exact.h"
#include "reliability/mc_sampling.h"
#include "reliability/recursive_sampling.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(Rss, CertainOutcomes) {
  const UncertainGraph certain = GraphFromString("0 1 1\n1 2 1\n");
  RecursiveStratifiedEstimator rss(certain);
  EstimateOptions opts;
  opts.num_samples = 500;
  EXPECT_DOUBLE_EQ(rss.Estimate({0, 2}, opts)->reliability, 1.0);

  GraphBuilder b(3);
  b.AddEdge(1, 2, 0.9).CheckOK();
  const UncertainGraph disconnected = b.Build().MoveValue();
  RecursiveStratifiedEstimator rss2(disconnected);
  EXPECT_DOUBLE_EQ(rss2.Estimate({0, 2}, opts)->reliability, 0.0);
}

TEST(Rss, UnbiasedOnDiamond) {
  const UncertainGraph g = DiamondGraph(0.5);
  const double truth = 1.0 - 0.75 * 0.75;
  RssOptions options;
  options.num_strata = 3;  // small graph, small r
  RecursiveStratifiedEstimator rss(g, options);
  RunningStats stats;
  for (int i = 0; i < 400; ++i) {
    EstimateOptions opts;
    opts.num_samples = 200;
    opts.seed = 11000 + i;
    stats.Add(rss.Estimate({0, 3}, opts)->reliability);
  }
  EXPECT_NEAR(stats.mean(), truth, 0.01);
}

TEST(Rss, VarianceBelowMonteCarloAtEqualK) {
  // Theorems 4.2/4.3 of [28]: stratification reduces variance.
  const UncertainGraph g = RandomSmallGraph(10, 24, 0.2, 0.8, 56);
  MonteCarloEstimator mc(g);
  RssOptions options;
  options.num_strata = 8;
  RecursiveStratifiedEstimator rss(g, options);
  RunningStats mc_stats;
  RunningStats rss_stats;
  constexpr uint32_t kK = 120;
  for (int i = 0; i < 500; ++i) {
    EstimateOptions opts;
    opts.num_samples = kK;
    opts.seed = 50000 + i;
    mc_stats.Add(mc.Estimate({0, 9}, opts)->reliability);
    rss_stats.Add(rss.Estimate({0, 9}, opts)->reliability);
  }
  EXPECT_NEAR(rss_stats.mean(), mc_stats.mean(), 0.02);
  EXPECT_LT(rss_stats.SampleVariance(), mc_stats.SampleVariance());
}

TEST(Rss, VarianceAtOrBelowRhh) {
  // RHH is RSS with r = 1 (Section 3.2 finding: RSS <= RHH in variance).
  const UncertainGraph g = RandomSmallGraph(10, 26, 0.25, 0.75, 57);
  RecursiveEstimator rhh(g);
  RssOptions options;
  options.num_strata = 8;
  RecursiveStratifiedEstimator rss(g, options);
  RunningStats rhh_stats;
  RunningStats rss_stats;
  for (int i = 0; i < 600; ++i) {
    EstimateOptions opts;
    opts.num_samples = 100;
    opts.seed = 60000 + i;
    rhh_stats.Add(rhh.Estimate({0, 9}, opts)->reliability);
    rss_stats.Add(rss.Estimate({0, 9}, opts)->reliability);
  }
  EXPECT_NEAR(rss_stats.mean(), rhh_stats.mean(), 0.02);
  EXPECT_LT(rss_stats.SampleVariance(), rhh_stats.SampleVariance() * 1.35);
}

TEST(Rss, AgreesWithExactAcrossGraphs) {
  for (uint64_t seed = 500; seed < 512; ++seed) {
    const UncertainGraph g = RandomSmallGraph(8, 18, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 7);
    RssOptions options;
    options.num_strata = 6;
    RecursiveStratifiedEstimator rss(g, options);
    double sum = 0.0;
    constexpr int kRuns = 5;
    for (int i = 0; i < kRuns; ++i) {
      EstimateOptions opts;
      opts.num_samples = 2000;
      opts.seed = seed * 37 + i;
      sum += rss.Estimate({0, 7}, opts)->reliability;
    }
    EXPECT_NEAR(sum / kRuns, exact, SamplingTolerance(exact, 2000 * kRuns, 5.0))
        << seed;
  }
}

TEST(Rss, StratumParameterSweepStaysUnbiased) {
  const UncertainGraph g = RandomSmallGraph(10, 30, 0.2, 0.7, 58);
  const double exact = *ExactReliabilityFactoring(g, 0, 9);
  for (const uint32_t r : {1u, 2u, 5u, 10u, 20u}) {
    RssOptions options;
    options.num_strata = r;
    RecursiveStratifiedEstimator rss(g, options);
    RunningStats stats;
    for (int i = 0; i < 120; ++i) {
      EstimateOptions opts;
      opts.num_samples = 400;
      opts.seed = 90000 + i;
      stats.Add(rss.Estimate({0, 9}, opts)->reliability);
    }
    EXPECT_NEAR(stats.mean(), exact, 0.025) << "r=" << r;
  }
}

TEST(Rss, HandlesGraphsSmallerThanStratumCount) {
  // |E| < r must fall back to plain MC (Alg. 5 line 2).
  const UncertainGraph g = DiamondGraph(0.5);
  RssOptions options;
  options.num_strata = 50;  // > 4 edges
  RecursiveStratifiedEstimator rss(g, options);
  EstimateOptions opts;
  opts.num_samples = 8000;
  opts.seed = 3;
  const double truth = 1.0 - 0.75 * 0.75;
  EXPECT_NEAR(rss.Estimate({0, 3}, opts)->reliability, truth,
              SamplingTolerance(truth, 8000));
}

TEST(Rss, MemoryAboveMonteCarloDueToSimplifiedCopies) {
  const UncertainGraph g = RandomSmallGraph(200, 1000, 0.3, 0.9, 59);
  MonteCarloEstimator mc(g);
  RssOptions options;
  options.num_strata = 20;
  RecursiveStratifiedEstimator rss(g, options);
  EstimateOptions opts;
  opts.num_samples = 500;
  opts.seed = 6;
  EXPECT_GT(rss.Estimate({0, 100}, opts)->peak_memory_bytes,
            mc.Estimate({0, 100}, opts)->peak_memory_bytes);
}

TEST(Rss, DeterministicPerSeed) {
  const UncertainGraph g = RandomSmallGraph(10, 30, 0.2, 0.8, 60);
  RecursiveStratifiedEstimator rss(g);
  EstimateOptions opts;
  opts.num_samples = 600;
  opts.seed = 99;
  EXPECT_DOUBLE_EQ(rss.Estimate({0, 9}, opts)->reliability,
                   rss.Estimate({0, 9}, opts)->reliability);
}

}  // namespace
}  // namespace relcomp
