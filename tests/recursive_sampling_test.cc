#include "reliability/recursive_sampling.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "reliability/exact.h"
#include "reliability/mc_sampling.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(Recursive, CertainPathShortCircuitsToOne) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 1\n");
  RecursiveEstimator rhh(g);
  EstimateOptions opts;
  opts.num_samples = 1000;
  // With both edges certain, every branch hits the E1-path termination.
  EXPECT_DOUBLE_EQ(rhh.Estimate({0, 2}, opts)->reliability, 1.0);
}

TEST(Recursive, DisconnectedIsExactlyZero) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.9).CheckOK();
  b.AddEdge(2, 3, 0.9).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  RecursiveEstimator rhh(g);
  EstimateOptions opts;
  opts.num_samples = 1000;
  EXPECT_DOUBLE_EQ(rhh.Estimate({0, 3}, opts)->reliability, 0.0);
}

TEST(Recursive, SmallBudgetFallsBackToBaseCase) {
  const UncertainGraph g = DiamondGraph(0.5);
  RecursiveEstimator rhh(g);
  EstimateOptions opts;
  opts.num_samples = 3;  // below default threshold 5
  opts.seed = 1;
  const double r = rhh.Estimate({0, 3}, opts)->reliability;
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST(Recursive, UnbiasedOnDiamond) {
  const UncertainGraph g = DiamondGraph(0.5);
  const double truth = 1.0 - 0.75 * 0.75;
  RecursiveEstimator rhh(g);
  RunningStats stats;
  for (int i = 0; i < 300; ++i) {
    EstimateOptions opts;
    opts.num_samples = 300;
    opts.seed = 9000 + i;
    stats.Add(rhh.Estimate({0, 3}, opts)->reliability);
  }
  EXPECT_NEAR(stats.mean(), truth, 0.01);
}

TEST(Recursive, VarianceBelowMonteCarloAtEqualK) {
  // Theorem 2 of [20]: proportional deterministic allocation reduces
  // variance vs plain MC at the same sample size.
  const UncertainGraph g = RandomSmallGraph(10, 24, 0.2, 0.8, 55);
  MonteCarloEstimator mc(g);
  RecursiveEstimator rhh(g);
  RunningStats mc_stats;
  RunningStats rhh_stats;
  constexpr uint32_t kK = 120;
  for (int i = 0; i < 500; ++i) {
    EstimateOptions opts;
    opts.num_samples = kK;
    opts.seed = 40000 + i;
    mc_stats.Add(mc.Estimate({0, 9}, opts)->reliability);
    rhh_stats.Add(rhh.Estimate({0, 9}, opts)->reliability);
  }
  EXPECT_NEAR(rhh_stats.mean(), mc_stats.mean(), 0.02);
  EXPECT_LT(rhh_stats.SampleVariance(), mc_stats.SampleVariance());
}

TEST(Recursive, ThresholdKnobIsRespected) {
  // A threshold as large as K degenerates RHH into plain MC (Figure 16's
  // observation); both extremes must stay unbiased.
  const UncertainGraph g = DiamondGraph(0.4);
  const double truth = 1.0 - (1.0 - 0.16) * (1.0 - 0.16);
  for (const uint32_t threshold : {2u, 100u}) {
    RecursiveSamplingOptions options;
    options.threshold = threshold;
    RecursiveEstimator rhh(g, options);
    RunningStats stats;
    for (int i = 0; i < 150; ++i) {
      EstimateOptions opts;
      opts.num_samples = 100;
      opts.seed = 70000 + i;
      stats.Add(rhh.Estimate({0, 3}, opts)->reliability);
    }
    EXPECT_NEAR(stats.mean(), truth, 0.02) << "threshold=" << threshold;
  }
}

TEST(Recursive, AgreesWithExactAcrossGraphs) {
  for (uint64_t seed = 400; seed < 412; ++seed) {
    const UncertainGraph g = RandomSmallGraph(8, 18, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 7);
    RecursiveEstimator rhh(g);
    double sum = 0.0;
    constexpr int kRuns = 5;
    for (int i = 0; i < kRuns; ++i) {
      EstimateOptions opts;
      opts.num_samples = 2000;
      opts.seed = seed * 31 + i;
      sum += rhh.Estimate({0, 7}, opts)->reliability;
    }
    // RHH's variance is below binomial, so the MC tolerance is conservative.
    EXPECT_NEAR(sum / kRuns, exact, SamplingTolerance(exact, 2000 * kRuns, 5.0))
        << seed;
  }
}

TEST(Recursive, LowProbabilityBranchesDoNotStarve) {
  // floor(K * p) would starve p = 0.01 branches; the >= 1 clamp keeps the
  // estimate sane.
  const UncertainGraph g = GraphFromString("0 1 0.01\n1 2 0.99\n");
  const double exact = 0.01 * 0.99;
  RecursiveEstimator rhh(g);
  RunningStats stats;
  for (int i = 0; i < 400; ++i) {
    EstimateOptions opts;
    opts.num_samples = 50;
    opts.seed = 80000 + i;
    stats.Add(rhh.Estimate({0, 2}, opts)->reliability);
  }
  EXPECT_NEAR(stats.mean(), exact, 0.01);
}

TEST(Recursive, AllSelectionStrategiesAreUnbiased) {
  // The selection policy only steers the conditioning order; every strategy
  // must estimate the same value (Section 2.4 ablation).
  const UncertainGraph g = RandomSmallGraph(8, 18, 0.2, 0.8, 68);
  const double exact = *ExactReliabilityEnumeration(g, 0, 7);
  for (const EdgeSelectionStrategy strategy :
       {EdgeSelectionStrategy::kDfs, EdgeSelectionStrategy::kBfs,
        EdgeSelectionStrategy::kRandom}) {
    RecursiveSamplingOptions options;
    options.selection = strategy;
    RecursiveEstimator rhh(g, options);
    RunningStats stats;
    for (int i = 0; i < 150; ++i) {
      EstimateOptions opts;
      opts.num_samples = 300;
      opts.seed = 91000 + i;
      stats.Add(rhh.Estimate({0, 7}, opts)->reliability);
    }
    EXPECT_NEAR(stats.mean(), exact, 0.02)
        << "strategy=" << static_cast<int>(strategy);
  }
}

TEST(Recursive, MemoryAboveMonteCarlo) {
  // Section 3.6: RHH keeps the edge-state array and recursion stack live.
  const UncertainGraph g = RandomSmallGraph(200, 1000, 0.3, 0.9, 66);
  MonteCarloEstimator mc(g);
  RecursiveEstimator rhh(g);
  EstimateOptions opts;
  opts.num_samples = 500;
  opts.seed = 2;
  const size_t mc_mem = mc.Estimate({0, 100}, opts)->peak_memory_bytes;
  const size_t rhh_mem = rhh.Estimate({0, 100}, opts)->peak_memory_bytes;
  EXPECT_GT(rhh_mem, mc_mem);
}

TEST(Recursive, DeterministicPerSeed) {
  const UncertainGraph g = RandomSmallGraph(10, 30, 0.2, 0.8, 67);
  RecursiveEstimator rhh(g);
  EstimateOptions opts;
  opts.num_samples = 777;
  opts.seed = 42;
  EXPECT_DOUBLE_EQ(rhh.Estimate({0, 9}, opts)->reliability,
                   rhh.Estimate({0, 9}, opts)->reliability);
}

}  // namespace
}  // namespace relcomp
