#include "common/status.h"

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, DefaultIsError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("hello"));
  const std::string moved = r.MoveValue();
  EXPECT_EQ(moved, "hello");
}

TEST(Result, ValueOrFallsBack) {
  Result<int> bad(Status::Internal("x"));
  EXPECT_EQ(bad.ValueOr(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.ValueOr(7), 3);
}

TEST(Result, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  RELCOMP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RELCOMP_ASSIGN_OR_RETURN(const int h, Half(x));
  RELCOMP_ASSIGN_OR_RETURN(const int q, Half(h));
  return q;
}

TEST(StatusMacros, AssignOrReturnChains) {
  const Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace relcomp
