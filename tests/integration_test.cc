// End-to-end pipeline tests at tiny scale: dataset registry -> workload ->
// all six estimators -> convergence protocol -> accuracy metrics, i.e. one
// miniature run of the paper's whole methodology.

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/recommendation.h"
#include "eval/table.h"

namespace relcomp {
namespace {

BenchConfig TinyConfig() {
  BenchConfig config;
  config.scale = Scale::kTiny;
  config.num_pairs = 6;
  config.repeats = 6;
  config.initial_k = 100;
  config.step_k = 150;
  config.max_k = 700;
  config.dispersion_threshold = 5e-3;  // loose: tiny T makes rho noisy
  config.seed = 424242;
  return config;
}

TEST(Integration, FullPipelineOnLastFmAnalogue) {
  ExperimentContext context(TinyConfig());
  const auto ground = context.GetGroundTruth(DatasetId::kLastFm);
  ASSERT_TRUE(ground.ok()) << ground.status();

  std::vector<double> relative_errors;
  for (EstimatorKind kind : TheSixEstimators()) {
    const auto report = context.GetConvergence(DatasetId::kLastFm, kind);
    ASSERT_TRUE(report.ok()) << EstimatorKindName(kind) << ": "
                             << report.status();
    const KPoint& final_point = (*report)->FinalPoint();
    EXPECT_GT(final_point.avg_reliability, 0.0) << EstimatorKindName(kind);
    const double re =
        RelativeError(final_point.per_pair_reliability, **ground);
    relative_errors.push_back(re);
    // Section 3.4: at/near convergence every estimator lands close to the
    // MC ground truth (paper: < 2%; generous band for tiny T and pairs).
    EXPECT_LT(re, 0.25) << EstimatorKindName(kind);
  }
  EXPECT_EQ(relative_errors.size(), 6u);
  EXPECT_LT(PairwiseDeviation(relative_errors), 0.25);
}

TEST(Integration, EstimatorsAgreeWithEachOtherOnEveryDataset) {
  ExperimentContext context(TinyConfig());
  for (DatasetId id : AllDatasetIds()) {
    const auto queries = context.GetQueries(id);
    ASSERT_TRUE(queries.ok()) << DatasetName(id);
    // Single representative query, generous K: all estimators must agree.
    const ReliabilityQuery q = (*queries)->front();
    double reference = -1.0;
    for (EstimatorKind kind : TheSixEstimators()) {
      const auto estimator = context.GetEstimator(id, kind);
      ASSERT_TRUE(estimator.ok());
      EstimateOptions opts;
      opts.num_samples = 1500;
      opts.seed = 7;
      const auto result = (*estimator)->Estimate(q, opts);
      ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
      if (reference < 0.0) {
        reference = result->reliability;
      } else {
        EXPECT_NEAR(result->reliability, reference, 0.12)
            << DatasetName(id) << " / " << EstimatorKindName(kind);
      }
    }
  }
}

TEST(Integration, RecursiveVarianceBeatsMcBasedOnRealWorkload) {
  // Figure 7's core claim at miniature scale: RHH/RSS dispersion at fixed K
  // is at most MC's (with slack for measurement noise).
  ExperimentContext context(TinyConfig());
  const auto queries = context.GetQueries(DatasetId::kLastFm);
  ASSERT_TRUE(queries.ok());
  auto measure = [&](EstimatorKind kind) {
    const auto estimator = context.GetEstimator(DatasetId::kLastFm, kind);
    EXPECT_TRUE(estimator.ok());
    return MeasureAtK(**estimator, **queries, 250, 20, 5).MoveValue();
  };
  const KPoint mc = measure(EstimatorKind::kMonteCarlo);
  const KPoint rss = measure(EstimatorKind::kRecursiveStratified);
  const KPoint rhh = measure(EstimatorKind::kRecursive);
  EXPECT_LT(rss.avg_variance, mc.avg_variance * 1.05);
  EXPECT_LT(rhh.avg_variance, mc.avg_variance * 1.05);
}

TEST(Integration, MemoryOrderingMatchesSection36) {
  // MC < LP+ and MC < RHH/RSS on working memory; index methods add index
  // bytes on top (Figure 12's ordering, checked pairwise where robust).
  ExperimentContext context(TinyConfig());
  const auto queries = context.GetQueries(DatasetId::kAsTopology);
  ASSERT_TRUE(queries.ok());
  const ReliabilityQuery q = (*queries)->front();
  auto peak = [&](EstimatorKind kind) {
    const auto estimator = context.GetEstimator(DatasetId::kAsTopology, kind);
    EXPECT_TRUE(estimator.ok());
    EstimateOptions opts;
    opts.num_samples = 400;
    opts.seed = 11;
    const auto result = (*estimator)->Estimate(q, opts);
    EXPECT_TRUE(result.ok());
    return result->peak_memory_bytes +
           (*estimator)->IndexMemoryBytes();
  };
  const size_t mc = peak(EstimatorKind::kMonteCarlo);
  const size_t lp = peak(EstimatorKind::kLazyPropagationPlus);
  const size_t bfs = peak(EstimatorKind::kBfsSharing);
  const size_t rss = peak(EstimatorKind::kRecursiveStratified);
  EXPECT_LT(mc, lp);
  EXPECT_LT(lp, bfs);
  EXPECT_LT(mc, rss);
}

TEST(Integration, ContextCachesAreStable) {
  ExperimentContext context(TinyConfig());
  const auto d1 = context.GetDataset(DatasetId::kLastFm);
  const auto d2 = context.GetDataset(DatasetId::kLastFm);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, *d2);  // same cached object
  const auto q1 = context.GetQueries(DatasetId::kLastFm);
  const auto q2 = context.GetQueries(DatasetId::kLastFm);
  EXPECT_EQ(*q1, *q2);
  const auto e1 = context.GetEstimator(DatasetId::kLastFm, EstimatorKind::kProbTree);
  const auto e2 = context.GetEstimator(DatasetId::kLastFm, EstimatorKind::kProbTree);
  EXPECT_EQ(*e1, *e2);
}

TEST(Integration, BenchConfigEnvOverrides) {
  ::setenv("RELCOMP_PAIRS", "9", 1);
  ::setenv("RELCOMP_REPEATS", "4", 1);
  ::setenv("RELCOMP_MAX_K", "1234", 1);
  const BenchConfig config = BenchConfig::FromEnv();
  EXPECT_EQ(config.num_pairs, 9u);
  EXPECT_EQ(config.repeats, 4u);
  EXPECT_EQ(config.max_k, 1234u);
  ::unsetenv("RELCOMP_PAIRS");
  ::unsetenv("RELCOMP_REPEATS");
  ::unsetenv("RELCOMP_MAX_K");
  EXPECT_NE(config.Describe().find("pairs=9"), std::string::npos);
}

TEST(Integration, ProbTreeCouplingKeepsAccuracy) {
  // Table 16: ProbTree+X must agree with plain X.
  ExperimentContext context(TinyConfig());
  const auto queries = context.GetQueries(DatasetId::kLastFm);
  ASSERT_TRUE(queries.ok());
  const ReliabilityQuery q = (*queries)->front();
  EstimateOptions opts;
  opts.num_samples = 3000;
  opts.seed = 13;
  const double plain =
      (*context.GetEstimator(DatasetId::kLastFm, EstimatorKind::kRecursive))
          ->Estimate(q, opts)
          ->reliability;
  const double coupled =
      (*context.GetEstimator(DatasetId::kLastFm, EstimatorKind::kProbTreeRhh))
          ->Estimate(q, opts)
          ->reliability;
  EXPECT_NEAR(coupled, plain, 0.08);
}

}  // namespace
}  // namespace relcomp
