#include "common/format.h"

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(StrFormat, BasicSubstitution) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f z=%s", 3, 1.5, "abc"), "x=3 y=1.50 z=abc");
}

TEST(StrFormat, EmptyAndNoArgs) {
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormat, LongOutput) {
  const std::string s = StrFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(HumanBytes, UnitsScale) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MB");
  EXPECT_EQ(HumanBytes(5ull << 30), "5.00 GB");
}

TEST(HumanSeconds, UnitsScale) {
  EXPECT_EQ(HumanSeconds(2e-9), "2.0 ns");
  EXPECT_EQ(HumanSeconds(3.5e-6), "3.50 us");
  EXPECT_EQ(HumanSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(HumanSeconds(1.5), "1.500 s");
  EXPECT_EQ(HumanSeconds(600), "10.0 min");
}

TEST(SplitString, BasicTokens) {
  const auto tokens = SplitString("a b\tc", " \t");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(SplitString, DropsEmptyTokens) {
  const auto tokens = SplitString("  a   b  ", " ");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
}

TEST(SplitString, EmptyInput) {
  EXPECT_TRUE(SplitString("", " ").empty());
  EXPECT_TRUE(SplitString("   ", " ").empty());
}

TEST(ParseDouble, ValidValues) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("1", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ParseDouble, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseUint64, ValidValues) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64, RejectsGarbage) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12ab", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));  // overflow
}

}  // namespace
}  // namespace relcomp
