// Crash-safety matrix for the persistence tier (src/persist/): round-trip
// bitwise identity, crash-point enumeration over the publish and append
// protocols, corruption detection (truncated tail, bit flips, version
// bumps), and restart recovery proven bit-identical to a fresh build.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "engine/query_engine.h"
#include "graph/graph_io.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "persist/store.h"
#include "reliability/bfs_sharing.h"
#include "reliability/prob_tree.h"
#include "test_util.h"

namespace relcomp {
namespace {

namespace fs = std::filesystem;
using ::relcomp::testing::RandomSmallGraph;

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Disarms the global injector even when a test fails mid-campaign.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::Global().Disable(); }
};

FactoryOptions SmallIndexOptions() {
  FactoryOptions options;
  options.bfs_sharing.index_samples = 64;
  return options;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Bitwise equality of two engine results (payload, not timing).
void ExpectBitIdentical(const EngineResult& a, const EngineResult& b) {
  ASSERT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(std::memcmp(&a.reliability, &b.reliability, sizeof(double)), 0);
  EXPECT_EQ(a.num_samples, b.num_samples);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_EQ(a.targets[i].node, b.targets[i].node);
    EXPECT_EQ(std::memcmp(&a.targets[i].reliability, &b.targets[i].reliability,
                          sizeof(double)),
              0);
  }
}

std::vector<EngineQuery> MixedWorkload() {
  std::vector<EngineQuery> queries;
  queries.push_back(EngineQuery::St(0, 7));
  queries.push_back(EngineQuery::TopK(1, 4));
  queries.push_back(EngineQuery::TopK(1, 2));
  queries.push_back(EngineQuery::ReliableSet(1, 0.05));
  queries.push_back(EngineQuery::St(2, 9));
  queries.push_back(EngineQuery::St(0, 7));  // repeat: exercises the cache
  return queries;
}

// ---------------------------------------------------------------------------
// Round-trip bitwise identity: graph, BFS Sharing index, ProbTree index.
// ---------------------------------------------------------------------------

TEST(PersistRoundTrip, AllThreeArtifactsBitIdentical) {
  ScratchDir dir("relcomp_persist_roundtrip");
  const UncertainGraph graph = RandomSmallGraph(24, 80, 0.2, 0.8, 7);
  const FactoryOptions options = SmallIndexOptions();

  Result<std::shared_ptr<BfsSharingIndex>> bfs = BfsSharingIndex::Build(
      graph, options.bfs_sharing, options.index_seed);
  ASSERT_TRUE(bfs.ok()) << bfs.status();
  Result<std::shared_ptr<const ProbTreeIndex>> prob_tree =
      ProbTreeIndex::BuildShared(graph, options.prob_tree);
  ASSERT_TRUE(prob_tree.ok()) << prob_tree.status();

  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store.value()
                  ->WriteSnapshot(graph, options, bfs.value().get(),
                                  prob_tree.value().get())
                  .ok());

  // Graph: identical fingerprint (every edge's tail/head/prob bits).
  Result<UncertainGraph> restored_graph =
      store.value()->LoadGraphFromSnapshot();
  ASSERT_TRUE(restored_graph.ok()) << restored_graph.status();
  EXPECT_EQ(GraphFingerprint(graph), GraphFingerprint(*restored_graph));

  SnapshotArtifacts artifacts = store.value()->OpenSnapshot(graph, options);
  ASSERT_TRUE(artifacts.valid);
  ASSERT_NE(artifacts.bfs_index, nullptr);
  ASSERT_NE(artifacts.prob_tree, nullptr);

  // Index artifacts: re-serializing the restored index must reproduce the
  // original block byte for byte.
  std::string bfs_block, bfs_block_restored;
  bfs.value()->AppendBlock(&bfs_block);
  artifacts.bfs_index->AppendBlock(&bfs_block_restored);
  EXPECT_EQ(bfs_block, bfs_block_restored);

  std::string pt_block, pt_block_restored;
  prob_tree.value()->AppendBlock(&pt_block);
  artifacts.prob_tree->AppendBlock(&pt_block_restored);
  EXPECT_EQ(pt_block, pt_block_restored);
}

TEST(PersistRoundTrip, MismatchedGraphRefusesSnapshot) {
  ScratchDir dir("relcomp_persist_mismatch");
  const UncertainGraph graph = RandomSmallGraph(24, 80, 0.2, 0.8, 7);
  const UncertainGraph other = RandomSmallGraph(24, 80, 0.2, 0.8, 8);
  const FactoryOptions options = SmallIndexOptions();
  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(
      store.value()->WriteSnapshot(graph, options, nullptr, nullptr).ok());
  // Different graph: mismatch, and the file is left in place (not
  // quarantined) — a rollback could make it usable again.
  EXPECT_FALSE(store.value()->OpenSnapshot(other, options).valid);
  EXPECT_TRUE(fs::exists(store.value()->snapshot_path()));
  // Same graph, different index seed: also a mismatch (the manifest pins
  // the whole sampling identity, indexes present or not).
  FactoryOptions different = options;
  different.index_seed ^= 1;
  EXPECT_FALSE(store.value()->OpenSnapshot(graph, different).valid);
}

// ---------------------------------------------------------------------------
// Crash-point enumeration: kill the snapshot publish at every step; the
// previously published snapshot must survive every crash.
// ---------------------------------------------------------------------------

TEST(PersistCrash, SnapshotPublishSurvivesEveryCrashPoint) {
  ScratchDir dir("relcomp_persist_crash_publish");
  InjectorGuard guard;
  const UncertainGraph graph = RandomSmallGraph(24, 80, 0.2, 0.8, 7);
  const FactoryOptions options = SmallIndexOptions();
  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  // Publish once, fault-free: this is the state every crash must preserve.
  ASSERT_TRUE(
      store.value()->WriteSnapshot(graph, options, nullptr, nullptr).ok());
  const std::string pristine = ReadFile(store.value()->snapshot_path());

  int crash_points = 0;
  for (int64_t select = 0; select < 10000; ++select) {
    FaultPlan plan;
    plan.crash_point_select = select;
    FaultInjector::Global().Configure(plan);
    const Status republish =
        store.value()->WriteSnapshot(graph, options, nullptr, nullptr);
    const uint64_t injected =
        FaultInjector::Global().injected(FaultSite::kCrashPoint);
    FaultInjector::Global().Disable();
    if (injected == 0) {
      // Enumeration exhausted: this iteration ran the full protocol.
      EXPECT_TRUE(republish.ok()) << republish;
      break;
    }
    ++crash_points;
    EXPECT_FALSE(republish.ok()) << "crash point " << select;
    // The previous snapshot must still be the live, intact one.
    EXPECT_EQ(ReadFile(store.value()->snapshot_path()), pristine)
        << "crash point " << select << " tore the published snapshot";
    Result<std::unique_ptr<PersistentStore>> reopened =
        PersistentStore::Open(dir.path(), nullptr);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened.value()->OpenSnapshot(graph, options).valid)
        << "crash point " << select;
  }
  // The publish protocol has several distinct steps (per-chunk writes plus
  // fsync / rename / dir-fsync barriers); all must have been exercised.
  EXPECT_GE(crash_points, 4);
}

TEST(PersistCrash, JournalAppendCrashLeavesReplayablePrefix) {
  ScratchDir dir("relcomp_persist_crash_journal");
  InjectorGuard guard;
  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  // Two intact records, then crash-enumerate the third append.
  ASSERT_TRUE(store.value()->AppendWarm(kJournalRecordSweep, "alpha").ok());
  ASSERT_TRUE(store.value()->AppendWarm(kJournalRecordResult, "beta").ok());
  ASSERT_TRUE(store.value()->SyncJournal().ok());

  for (int64_t select = 0; select < 100; ++select) {
    FaultPlan plan;
    plan.crash_point_select = select;
    FaultInjector::Global().Configure(plan);
    const Status append =
        store.value()->AppendWarm(kJournalRecordSweep, "gamma");
    const uint64_t injected =
        FaultInjector::Global().injected(FaultSite::kCrashPoint);
    FaultInjector::Global().Disable();
    Result<JournalReplay> replay = store.value()->ReplayWarm();
    ASSERT_TRUE(replay.ok()) << replay.status();
    ASSERT_GE(replay->records.size(), 2u);
    EXPECT_EQ(replay->records[0].payload, "alpha");
    EXPECT_EQ(replay->records[1].payload, "beta");
    if (injected == 0) {
      EXPECT_TRUE(append.ok());
      break;
    }
    EXPECT_FALSE(append.ok());
    // A poisoned writer reopens on the next append; state stays replayable.
  }

  // A torn tail (short write) must be discarded on replay, intact prefix
  // kept, and the tear reported.
  FaultPlan torn;
  torn.probability[static_cast<size_t>(FaultSite::kFileShortWrite)] = 1.0;
  FaultInjector::Global().Configure(torn);
  EXPECT_FALSE(store.value()->AppendWarm(kJournalRecordSweep, "delta").ok());
  FaultInjector::Global().Disable();
  Result<JournalReplay> replay = store.value()->ReplayWarm();
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_GE(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "alpha");
  EXPECT_EQ(replay->records[1].payload, "beta");
}

// ---------------------------------------------------------------------------
// Corruption detection: truncated journal tail, bit flip in every snapshot
// section, version bump.
// ---------------------------------------------------------------------------

TEST(PersistCorruption, TruncatedJournalTailReplaysPrefix) {
  ScratchDir dir("relcomp_persist_trunc");
  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store.value()->AppendWarm(kJournalRecordSweep, "one").ok());
  ASSERT_TRUE(store.value()->AppendWarm(kJournalRecordSweep, "two").ok());
  ASSERT_TRUE(store.value()->SyncJournal().ok());

  std::string bytes = ReadFile(store.value()->journal_path());
  ASSERT_GT(bytes.size(), 3u);
  WriteFile(store.value()->journal_path(),
            bytes.substr(0, bytes.size() - 2));  // tear mid-frame

  Result<JournalReplay> replay = store.value()->ReplayWarm();
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->torn_tail);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "one");
}

TEST(PersistCorruption, BitFlipInEverySectionIsDetected) {
  ScratchDir dir("relcomp_persist_bitflip");
  const UncertainGraph graph = RandomSmallGraph(24, 80, 0.2, 0.8, 7);
  const FactoryOptions options = SmallIndexOptions();
  Result<std::shared_ptr<BfsSharingIndex>> bfs = BfsSharingIndex::Build(
      graph, options.bfs_sharing, options.index_seed);
  ASSERT_TRUE(bfs.ok()) << bfs.status();
  Result<std::shared_ptr<const ProbTreeIndex>> prob_tree =
      ProbTreeIndex::BuildShared(graph, options.prob_tree);
  ASSERT_TRUE(prob_tree.ok()) << prob_tree.status();

  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store.value()
                  ->WriteSnapshot(graph, options, bfs.value().get(),
                                  prob_tree.value().get())
                  .ok());
  const std::string path = store.value()->snapshot_path();
  const std::string pristine = ReadFile(path);

  // Enumerate the sections from the pristine container.
  struct Target {
    uint32_t id;
    size_t offset;
  };
  std::vector<Target> targets;
  {
    Result<std::unique_ptr<SnapshotReader>> reader = SnapshotReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    for (const SnapshotReader::Section& section : reader.value()->sections()) {
      ASSERT_GT(section.size, 0u);
      targets.push_back(
          Target{section.id, section.file_offset + section.size / 2});
    }
  }
  ASSERT_EQ(targets.size(), 4u);  // manifest, graph, BFS, ProbTree

  for (const Target& target : targets) {
    std::string corrupted = pristine;
    corrupted[target.offset] = static_cast<char>(corrupted[target.offset] ^ 0x40);
    WriteFile(path, corrupted);
    obs::MetricsRegistry metrics;
    Result<std::unique_ptr<PersistentStore>> reopened =
        PersistentStore::Open(dir.path(), &metrics);
    ASSERT_TRUE(reopened.ok());
    EXPECT_FALSE(reopened.value()->OpenSnapshot(graph, options).valid)
        << "flip in section " << target.id << " went undetected";
    EXPECT_GE(
        metrics.GetCounter("persist_corruption_detected_total")->Value(), 1u)
        << "section " << target.id;
    // The corrupt file was quarantined out of the open path.
    EXPECT_FALSE(fs::exists(path)) << "section " << target.id;
    EXPECT_TRUE(fs::exists(path + ".corrupt")) << "section " << target.id;
    fs::remove(path + ".corrupt");
    WriteFile(path, pristine);  // restore for the next section
  }
}

TEST(PersistCorruption, VersionBumpIsRefused) {
  ScratchDir dir("relcomp_persist_version");
  const UncertainGraph graph = RandomSmallGraph(24, 80, 0.2, 0.8, 7);
  const FactoryOptions options = SmallIndexOptions();
  Result<std::unique_ptr<PersistentStore>> store =
      PersistentStore::Open(dir.path(), nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(
      store.value()->WriteSnapshot(graph, options, nullptr, nullptr).ok());
  const std::string path = store.value()->snapshot_path();
  std::string bytes = ReadFile(path);
  // Header layout: magic[8], then version u32.
  const uint32_t future = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  WriteFile(path, bytes);

  Result<std::unique_ptr<SnapshotReader>> reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("unsupported version"),
            std::string::npos)
      << reader.status();
}

// ---------------------------------------------------------------------------
// Restart recovery through the engine: O(1) snapshot cold start, warm-state
// restore, and bit-identity with a fresh build at 1/2/8 threads.
// ---------------------------------------------------------------------------

EngineOptions PersistEngineOptions(const std::string& dir, size_t threads) {
  EngineOptions options;
  options.kind = EstimatorKind::kBfsSharing;
  options.num_threads = threads;
  options.num_samples = 64;
  options.factory = SmallIndexOptions();
  options.persist_dir = dir;
  options.persist_flush_seconds = 0.0;  // flush manually / at destruction
  return options;
}

TEST(PersistRestart, RestoredEngineBitIdenticalToFreshBuild) {
  ScratchDir dir("relcomp_persist_restart");
  const UncertainGraph graph = RandomSmallGraph(32, 120, 0.2, 0.8, 11);
  const std::vector<EngineQuery> queries = MixedWorkload();

  // Fresh build, no persistence: the reference answers.
  EngineOptions fresh_options = PersistEngineOptions("", 2);
  fresh_options.persist_dir.clear();
  Result<std::unique_ptr<QueryEngine>> fresh =
      QueryEngine::Create(graph, fresh_options);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  Result<std::vector<EngineResult>> reference =
      fresh.value()->RunBatch(queries);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // First persistent engine: rebuilds from source, auto-publishes the
  // snapshot.
  {
    Result<std::unique_ptr<QueryEngine>> first =
        QueryEngine::Create(graph, PersistEngineOptions(dir.path(), 2));
    ASSERT_TRUE(first.ok()) << first.status();
    EXPECT_FALSE(first.value()->warm_restore_report().snapshot_restored);
    ASSERT_TRUE(fs::exists(first.value()->persist_store()->snapshot_path()));
  }

  // Restarted engines at 1 / 2 / 8 threads: every one cold-starts from the
  // snapshot and answers bit-identically to the fresh build.
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    Result<std::unique_ptr<QueryEngine>> restored =
        QueryEngine::Create(graph, PersistEngineOptions(dir.path(), threads));
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_TRUE(restored.value()->warm_restore_report().snapshot_restored)
        << threads << " threads";
    Result<std::vector<EngineResult>> results =
        restored.value()->RunBatch(queries);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_EQ(results->size(), reference->size());
    for (size_t i = 0; i < results->size(); ++i) {
      ExpectBitIdentical((*reference)[i], (*results)[i]);
    }
  }
}

TEST(PersistRestart, WarmRestoreServesFirstQueryFromCache) {
  ScratchDir dir("relcomp_persist_warm");
  const UncertainGraph graph = RandomSmallGraph(32, 120, 0.2, 0.8, 11);
  const std::vector<EngineQuery> queries = MixedWorkload();

  std::vector<EngineResult> first_run;
  {
    Result<std::unique_ptr<QueryEngine>> engine =
        QueryEngine::Create(graph, PersistEngineOptions(dir.path(), 2));
    ASSERT_TRUE(engine.ok()) << engine.status();
    Result<std::vector<EngineResult>> results =
        engine.value()->RunBatch(queries);
    ASSERT_TRUE(results.ok()) << results.status();
    first_run = results.MoveValue();
    ASSERT_TRUE(engine.value()->FlushWarmState().ok());
  }  // destructor also runs the final flush

  Result<std::unique_ptr<QueryEngine>> restarted =
      QueryEngine::Create(graph, PersistEngineOptions(dir.path(), 2));
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  const auto& report = restarted.value()->warm_restore_report();
  EXPECT_TRUE(report.attempted);
  EXPECT_GT(report.result_entries, 0u);
  EXPECT_GT(report.sweep_entries, 0u);
  EXPECT_EQ(report.skipped, 0u);

  // The very first query after restart hits the restored cache — and the
  // restored answer is bit-identical to the pre-restart computation.
  Result<std::vector<EngineResult>> replayed =
      restarted.value()->RunBatch(queries);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE((*replayed)[0].cache_hit);
  for (size_t i = 0; i < replayed->size(); ++i) {
    ExpectBitIdentical(first_run[i], (*replayed)[i]);
  }
}

TEST(PersistRestart, JournalFromOtherSeedIsSkippedNotServed) {
  ScratchDir dir("relcomp_persist_other_seed");
  const UncertainGraph graph = RandomSmallGraph(32, 120, 0.2, 0.8, 11);
  const std::vector<EngineQuery> queries = MixedWorkload();
  {
    EngineOptions options = PersistEngineOptions(dir.path(), 2);
    options.seed = 1;
    Result<std::unique_ptr<QueryEngine>> engine =
        QueryEngine::Create(graph, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine.value()->RunBatch(queries).ok());
    ASSERT_TRUE(engine.value()->FlushWarmState().ok());
  }
  // Same graph, different master seed: every journaled key re-derives
  // differently, so nothing may be folded back.
  EngineOptions options = PersistEngineOptions(dir.path(), 2);
  options.seed = 2;
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(graph, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto& report = engine.value()->warm_restore_report();
  EXPECT_EQ(report.result_entries, 0u);
  EXPECT_EQ(report.sweep_entries, 0u);
  EXPECT_GT(report.skipped, 0u);
  Result<std::vector<EngineResult>> results = engine.value()->RunBatch(queries);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_FALSE((*results)[0].cache_hit);
}

TEST(PersistRestart, CrashedPublishAtCreateDegradesToRebuild) {
  ScratchDir dir("relcomp_persist_create_crash");
  InjectorGuard guard;
  const UncertainGraph graph = RandomSmallGraph(32, 120, 0.2, 0.8, 11);
  // Crash the very first auto-snapshot publish mid-write.
  FaultPlan plan;
  plan.crash_point_select = 0;
  FaultInjector::Global().Configure(plan);
  {
    Result<std::unique_ptr<QueryEngine>> engine =
        QueryEngine::Create(graph, PersistEngineOptions(dir.path(), 2));
    ASSERT_TRUE(engine.ok()) << engine.status();  // publish failure is soft
    EXPECT_FALSE(engine.value()->warm_restore_report().snapshot_restored);
  }
  FaultInjector::Global().Disable();
  // Next restart: no snapshot (the crashed publish never renamed), rebuild
  // again, auto-publish succeeds this time.
  Result<std::unique_ptr<QueryEngine>> engine =
      QueryEngine::Create(graph, PersistEngineOptions(dir.path(), 2));
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_FALSE(engine.value()->warm_restore_report().snapshot_restored);
  ASSERT_TRUE(fs::exists(engine.value()->persist_store()->snapshot_path()));
  obs::MetricsRegistry& metrics = engine.value()->metrics();
  EXPECT_GE(metrics.GetCounter("persist_recovered_total", "source", "rebuild")
                ->Value(),
            1u);
}

}  // namespace
}  // namespace relcomp
