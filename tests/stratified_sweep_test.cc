// Coverage of the intra-query stratified-sweep layer: the stratum helpers,
// the MC and BFS Sharing stratified cores (stratum merges bit-identical to
// serial stratified calls; BFS Sharing slice-invariance), the engine's
// stratum scheduler (bit-identical at 1/2/8 threads x S in {1, 4, 16},
// stealing-vs-blocking parity, steal counters), the warm-ahead scout pass
// (deterministic on/off, counted), stratified-vs-unstratified accuracy, and
// the multi-threaded byte-budgeted generation prebuilder.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/generation_prebuilder.h"
#include "engine/query_engine.h"
#include "reliability/bfs_sharing.h"
#include "reliability/mc_sampling.h"
#include "reliability/reliable_set.h"
#include "reliability/top_k.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

EngineOptions BaseOptions(size_t threads, EstimatorKind kind,
                          uint32_t num_strata) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 200;
  options.num_strata = num_strata;
  options.seed = 20260730;
  return options;
}

void ExpectBitIdentical(const std::vector<EngineResult>& a,
                        const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].query.Describe());
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    EXPECT_EQ(
        std::memcmp(&a[i].reliability, &b[i].reliability, sizeof(double)), 0);
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size());
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node);
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0);
    }
  }
}

TEST(StratifiedSweepTest, StratumHelpersPartitionTheBudget) {
  // Counts tile [0, K) exactly, for even and ragged splits.
  for (const uint32_t total : {1u, 7u, 16u, 203u}) {
    for (const uint32_t strata : {1u, 3u, 4u, 16u, 300u}) {
      uint32_t sum = 0;
      for (uint32_t j = 0; j < strata; ++j) {
        EXPECT_EQ(StratumSampleOffset(total, strata, j), sum);
        sum += StratumSampleCount(total, strata, j);
      }
      EXPECT_EQ(sum, total);
    }
  }
  // S = 1 is the legacy path: the seed passes through untouched.
  EXPECT_EQ(StratumSeed(42, 0, 1), 42u);
  EXPECT_EQ(StratumSeed(42, 0, 0), 42u);
  // S > 1 derives distinct per-stratum streams.
  EXPECT_EQ(StratumSeed(42, 3, 8), HashCombineSeed(42, 3));
  EXPECT_NE(StratumSeed(42, 0, 8), StratumSeed(42, 1, 8));
}

TEST(StratifiedSweepTest, McSingleStratumMatchesLegacySweep) {
  // The S = 1 sweep is bit-identical to the pre-strata behaviour (same RNG
  // stream, same division), so existing seeds reproduce exactly.
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 71);
  const std::vector<double> legacy =
      MonteCarloReliabilityFromSource(graph, 3, 500, 99).MoveValue();
  const std::vector<double> one_stratum =
      MonteCarloReliabilityFromSource(graph, 3, 500, 99, 1).MoveValue();
  ASSERT_EQ(legacy.size(), one_stratum.size());
  for (size_t v = 0; v < legacy.size(); ++v) {
    EXPECT_EQ(std::memcmp(&legacy[v], &one_stratum[v], sizeof(double)), 0);
  }
}

TEST(StratifiedSweepTest, McStratumMergeMatchesSerialStratifiedSweep) {
  // The engine contract: run each stratum on its own (fresh) replica, merge
  // hit counts in stratum order, divide by K — bit-identical to one serial
  // EstimateFromSource with the same num_strata. Ragged K exercises the
  // uneven budget split.
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 72);
  const uint32_t kSamples = 203;
  const uint64_t kSeed = 0xFEED;
  for (const uint32_t strata : {1u, 4u, 16u}) {
    SCOPED_TRACE(strata);
    const std::vector<double> serial =
        MonteCarloReliabilityFromSource(graph, 5, kSamples, kSeed, strata)
            .MoveValue();
    std::vector<uint32_t> totals(graph.num_nodes(), 0);
    for (uint32_t j = 0; j < strata; ++j) {
      // A fresh estimator per stratum mimics strata landing on different
      // engine workers (each with private scratch).
      MonteCarloEstimator replica(graph);
      EstimateOptions options;
      options.num_samples = kSamples;
      options.seed = kSeed;
      const std::vector<uint32_t> hits =
          replica.EstimateSweepStratumHits(5, j, strata, options).MoveValue();
      ASSERT_EQ(hits.size(), graph.num_nodes());
      for (size_t v = 0; v < hits.size(); ++v) totals[v] += hits[v];
    }
    for (size_t v = 0; v < totals.size(); ++v) {
      const double merged =
          static_cast<double>(totals[v]) / static_cast<double>(kSamples);
      EXPECT_EQ(std::memcmp(&merged, &serial[v], sizeof(double)), 0)
          << "node " << v;
    }
  }
}

TEST(StratifiedSweepTest, BfsSharingStrataAreSliceInvariant) {
  // BFS Sharing strata are world slices of ONE generation: per-world
  // independence makes slice counts sum exactly to the whole-range counts,
  // so the merged sweep is bit-identical to the serial sweep for EVERY
  // stratum count — provided each participant prepared to the same seed.
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 73);
  BfsSharingOptions bfs;
  bfs.index_samples = 257;  // deliberately not word-aligned
  const uint32_t kSamples = 193;
  const uint64_t kPrepare = 0xABCD;

  auto serial = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
  ASSERT_TRUE(serial->PrepareForNextQuery(kPrepare).ok());
  const std::vector<double> whole =
      serial->ReliabilityFromSource(0, kSamples).MoveValue();

  for (const uint32_t strata : {1u, 3u, 8u}) {
    SCOPED_TRACE(strata);
    std::vector<uint32_t> totals(graph.num_nodes(), 0);
    for (uint32_t j = 0; j < strata; ++j) {
      auto replica = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
      ASSERT_TRUE(replica->PrepareForNextQuery(kPrepare).ok());
      EstimateOptions options;
      options.num_samples = kSamples;
      const std::vector<uint32_t> hits =
          replica->EstimateSweepStratumHits(0, j, strata, options)
              .MoveValue();
      for (size_t v = 0; v < hits.size(); ++v) totals[v] += hits[v];
    }
    for (size_t v = 0; v < totals.size(); ++v) {
      const double merged =
          static_cast<double>(totals[v]) / static_cast<double>(kSamples);
      EXPECT_EQ(std::memcmp(&merged, &whole[v], sizeof(double)), 0)
          << "node " << v;
    }
  }
}

TEST(StratifiedSweepTest, McStratifiedStEstimateIsCanonicalInS) {
  // Plain s-t DoEstimate shares the stratified core: S = 1 is legacy, S > 1
  // changes the sampling plan but stays deterministic per (content, S).
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 74);
  MonteCarloEstimator a(graph);
  MonteCarloEstimator b(graph);
  for (const uint32_t strata : {1u, 4u, 16u}) {
    EstimateOptions options;
    options.num_samples = 300;
    options.seed = 7;
    options.num_strata = strata;
    const double first =
        a.Estimate(ReliabilityQuery{0, 9}, options).MoveValue().reliability;
    const double second =
        b.Estimate(ReliabilityQuery{0, 9}, options).MoveValue().reliability;
    EXPECT_EQ(std::memcmp(&first, &second, sizeof(double)), 0);
  }
}

/// Distinct parameterizations of one hot source: the stratified scheduler's
/// bread and butter (no query-level coalescing possible, every query needs
/// the same sweep).
std::vector<EngineQuery> HotSourceMix(NodeId source, uint32_t queries) {
  std::vector<EngineQuery> mix;
  for (uint32_t k = 1; k <= queries; ++k) {
    mix.push_back(EngineQuery::TopK(source, k));
  }
  return mix;
}

TEST(StratifiedSweepTest, EngineBitIdenticalAcrossThreadsAndSchedulers) {
  // The acceptance matrix: threads in {1, 2, 8} x S in {1, 4, 16} x
  // stealing-vs-blocking (coalescing on/off) x scout on/off — every config
  // bit-identical to the 1-thread serial reference *for the same S*.
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 75);
  std::vector<EngineQuery> queries = HotSourceMix(2, 6);
  const std::vector<EngineQuery> second_source = HotSourceMix(11, 4);
  queries.insert(queries.end(), second_source.begin(), second_source.end());
  queries.push_back(EngineQuery::ReliableSet(2, 0.3));
  queries.push_back(EngineQuery::St(2, 17));

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    for (const uint32_t strata : {1u, 4u, 16u}) {
      SCOPED_TRACE(strata);
      EngineOptions reference_options = BaseOptions(1, kind, strata);
      reference_options.enable_coalescing = false;
      reference_options.enable_sweep_scout = false;
      auto reference_engine =
          QueryEngine::Create(graph, reference_options).MoveValue();
      const std::vector<EngineResult> reference =
          reference_engine->RunBatch(queries).MoveValue();
      for (const EngineResult& r : reference) ASSERT_TRUE(r.ok()) << r.status;

      for (const size_t threads : {1u, 2u, 8u}) {
        for (const bool coalescing : {true, false}) {
          for (const bool scout : {true, false}) {
            SCOPED_TRACE(threads);
            SCOPED_TRACE(coalescing);
            SCOPED_TRACE(scout);
            EngineOptions options = BaseOptions(threads, kind, strata);
            options.enable_coalescing = coalescing;
            options.enable_sweep_scout = scout;
            auto engine = QueryEngine::Create(graph, options).MoveValue();
            ExpectBitIdentical(reference,
                               engine->RunBatch(queries).MoveValue());
          }
        }
      }
    }
  }
}

TEST(StratifiedSweepTest, BfsSharingSweepsIgnoreStratumCount) {
  // The slice-invariance carries to the engine: BFS Sharing answers are
  // bit-identical across different S (MC answers deliberately are not).
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 76);
  const std::vector<EngineQuery> queries = HotSourceMix(4, 5);
  std::vector<EngineResult> reference;
  for (const uint32_t strata : {1u, 4u, 16u}) {
    SCOPED_TRACE(strata);
    auto engine =
        QueryEngine::Create(graph,
                            BaseOptions(4, EstimatorKind::kBfsSharing, strata))
            .MoveValue();
    std::vector<EngineResult> results = engine->RunBatch(queries).MoveValue();
    for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
    if (reference.empty()) {
      reference = std::move(results);
    } else {
      ExpectBitIdentical(reference, results);
    }
  }
}

TEST(StratifiedSweepTest, StrataAreCountedAndStolenUnderConcurrency) {
  const UncertainGraph graph = RandomSmallGraph(40, 150, 0.3, 0.9, 77);
  EngineOptions options = BaseOptions(8, EstimatorKind::kMonteCarlo, 16);
  options.num_samples = 2000;   // a sweep heavy enough to overlap claims
  options.enable_cache = false;
  options.enable_sweep_scout = false;  // isolate query-driven stealing
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(HotSourceMix(1, 16)).MoveValue();
  for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  // One sweep, all 16 strata executed through the scheduler.
  EXPECT_EQ(snapshot.sweep_executed, 1u);
  EXPECT_EQ(snapshot.strata_executed, 16u);
  EXPECT_LE(snapshot.strata_stolen, snapshot.strata_executed);
  // Per-sweep latency was sampled.
  EXPECT_GT(snapshot.sweep_p95_ms, 0.0);
  if (std::thread::hardware_concurrency() >= 2) {
    // With real parallelism the 15 coalesced waiters overwhelmingly steal
    // at least one of the 16 strata instead of all blocking.
    EXPECT_GT(snapshot.strata_stolen, 0u);
  }
}

TEST(StratifiedSweepTest, ScoutWarmsHotBatchSourcesDeterministically) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 78);
  // Source 6 is hot (5 parameterizations), source 13 appears once (below
  // the scout threshold), plus st noise.
  std::vector<EngineQuery> queries = HotSourceMix(6, 5);
  queries.push_back(EngineQuery::TopK(13, 3));
  queries.push_back(EngineQuery::St(0, 9));

  // 1 worker makes the scout's lead deterministic: its warm task is queued
  // ahead of every query task, so it always wins the sweep's single-flight.
  EngineOptions options = BaseOptions(1, EstimatorKind::kMonteCarlo, 4);
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.scout_warms, 1u);       // source 6 only
  EXPECT_EQ(snapshot.sweep_executed, 2u);    // scout(6) + query-led (13)
  // Every source-6 query derived from the scout's memoized vector.
  EXPECT_EQ(snapshot.sweep_hits, 5u);

  // Scout off: same answers (the scout only changes who computes).
  EngineOptions off = options;
  off.enable_sweep_scout = false;
  auto engine_off = QueryEngine::Create(graph, off).MoveValue();
  ExpectBitIdentical(results, engine_off->RunBatch(queries).MoveValue());
  EXPECT_EQ(engine_off->StatsSnapshot().scout_warms, 0u);
}

TEST(StratifiedSweepTest, StreamScoutsRepeatedSourcesPerCycle) {
  const UncertainGraph graph = RandomSmallGraph(24, 70, 0.3, 0.9, 79);
  EngineOptions options = BaseOptions(1, EstimatorKind::kMonteCarlo, 4);
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  // Second submission of source 9 in the cycle triggers the stream scout.
  ASSERT_TRUE(engine->Submit(EngineQuery::TopK(9, 2)).ok());
  ASSERT_TRUE(engine->Submit(EngineQuery::TopK(9, 7)).ok());
  ASSERT_TRUE(engine->Submit(EngineQuery::ReliableSet(9, 0.4)).ok());
  const std::vector<EngineResult> first = engine->Drain().MoveValue();
  for (const EngineResult& r : first) ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_LE(engine->StatsSnapshot().sweep_executed, 2u);

  // Batch twin answers bit-identically (stream scouting is invisible too).
  auto batch_engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> batch =
      batch_engine
          ->RunBatch(std::vector<EngineQuery>{EngineQuery::TopK(9, 2),
                                              EngineQuery::TopK(9, 7),
                                              EngineQuery::ReliableSet(9, 0.4)})
          .MoveValue();
  ExpectBitIdentical(first, batch);
}

TEST(StratifiedSweepTest, StratifiedMcMatchesUnstratifiedWithinTolerance) {
  // Stratification re-plans the sampling but not the estimand: S = 8 and
  // S = 1 sweeps over the same budget agree within MC convergence bounds
  // (each node's difference of two independent K-sample proportions).
  const UncertainGraph graph = RandomSmallGraph(30, 100, 0.3, 0.9, 80);
  const uint32_t kSamples = 4000;
  const std::vector<double> flat =
      MonteCarloReliabilityFromSource(graph, 0, kSamples, 555, 1).MoveValue();
  const std::vector<double> stratified =
      MonteCarloReliabilityFromSource(graph, 0, kSamples, 555, 8).MoveValue();
  ASSERT_EQ(flat.size(), stratified.size());
  for (size_t v = 0; v < flat.size(); ++v) {
    // z = 5 on the two-estimate difference: sqrt(2 * p(1-p) / K) <=
    // sqrt(0.5 / K).
    const double bound =
        5.0 * std::sqrt(0.5 / static_cast<double>(kSamples)) + 1e-9;
    EXPECT_NEAR(flat[v], stratified[v], bound) << "node " << v;
  }
  // Engine parity: the engine's stratified answer equals the standalone API
  // given the same stratum count (the reproduction contract).
  EngineOptions options = BaseOptions(4, EstimatorKind::kMonteCarlo, 8);
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const EngineQuery query = EngineQuery::TopK(0, 10);
  const std::vector<EngineResult> results =
      engine->RunBatch(std::vector<EngineQuery>{query}).MoveValue();
  ASSERT_TRUE(results[0].ok()) << results[0].status;
  const std::vector<ReliableTarget> expected =
      TopKReliableTargetsMonteCarlo(graph, 0, 10, options.num_samples,
                                    engine->QuerySeed(query),
                                    options.num_strata)
          .MoveValue();
  ASSERT_EQ(results[0].targets.size(), expected.size());
  for (size_t j = 0; j < expected.size(); ++j) {
    EXPECT_EQ(results[0].targets[j].node, expected[j].node);
    EXPECT_EQ(std::memcmp(&results[0].targets[j].reliability,
                          &expected[j].reliability, sizeof(double)),
              0);
  }
}

TEST(StratifiedSweepTest, SharedPreparedStateReproducesSweepBitwise) {
  // The stratum-thief fast path: instead of re-running the leader's O(L·m)
  // prepare, a sibling replica adopts the leader's generation snapshot in
  // O(1) and reads literally the same worlds.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 83);
  BfsSharingOptions bfs;
  bfs.index_samples = 128;
  auto leader = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
  ASSERT_TRUE(leader->PrepareForNextQuery(0xBEEF).ok());
  const std::vector<double> expected =
      leader->ReliabilityFromSource(2, 100).MoveValue();

  auto thief = BfsSharingEstimator::Create(graph, bfs, 99).MoveValue();
  ASSERT_TRUE(thief->SupportsSharedPreparedState());
  std::shared_ptr<const PreparedGeneration> state =
      leader->ShareCurrentPreparedState().MoveValue();
  EXPECT_GT(state->MemoryBytes(), 0u);
  ASSERT_TRUE(thief->AdoptSharedPreparedState(state).ok());
  // Literally the same generation object, not a bit-identical rebuild.
  EXPECT_EQ(thief->SharedIndexIdentity(), leader->SharedIndexIdentity());
  const std::vector<double> adopted =
      thief->ReliabilityFromSource(2, 100).MoveValue();
  ASSERT_EQ(adopted.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(std::memcmp(&adopted[v], &expected[v], sizeof(double)), 0);
  }
  // The sharer's next inline prepare must not refill the shared worlds
  // under the thief: it swaps to a fresh generation instead.
  const void* shared_generation = leader->SharedIndexIdentity();
  ASSERT_TRUE(leader->PrepareForNextQuery(0xF00D).ok());
  EXPECT_NE(leader->SharedIndexIdentity(), shared_generation);
  EXPECT_EQ(thief->SharedIndexIdentity(), shared_generation);

  // MC has no shared prepared state (its prepare is a no-op already).
  MonteCarloEstimator mc(graph);
  EXPECT_FALSE(mc.SupportsSharedPreparedState());
}

TEST(StratifiedSweepTest, FlightPeakMemoryReachesEveryParticipant) {
  // Every flight participant — the leader and any joiner, including when
  // the warm-ahead scout led the flight — reports the sweep's tracked
  // working-set peak, not just its own derivation scan (PR 4 contract:
  // sweep queries report the sweep's footprint). Sweep cache off forces
  // every query through a flight (no memo hits), so at least the flight
  // leaders carry the full peak whatever the thread interleaving.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 84);
  EngineOptions options = BaseOptions(2, EstimatorKind::kMonteCarlo, 4);
  options.enable_cache = false;
  options.enable_sweep_cache = false;
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(HotSourceMix(3, 8)).MoveValue();
  for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
  // The MC stratum working set (hit counts + epoch marks + BFS queue,
  // 3 x uint32 per node) exceeds the bare derivation scan (n doubles).
  const size_t derive_only = graph.num_nodes() * sizeof(double);
  EXPECT_GT(engine->StatsSnapshot().peak_memory_bytes, derive_only);
}

TEST(StratifiedSweepTest, PrebuilderFansSeedsAcrossBuilders) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 81);
  BfsSharingOptions bfs;
  bfs.index_samples = 64;
  auto estimator = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
  GenerationPrebuilder prebuilder(*estimator, /*max_pending=*/8,
                                  /*num_builders=*/3);
  EXPECT_EQ(prebuilder.num_builders(), 3u);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    EXPECT_TRUE(prebuilder.Request(seed));
  }
  while (prebuilder.Stats().built < 6) std::this_thread::yield();
  // Every seed built exactly once and adoptable; the ready pool accounts
  // index-sized bytes until the takes drain it.
  EXPECT_GT(prebuilder.ReadyBytes(), 0u);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::unique_ptr<PreparedGeneration> generation = prebuilder.Take(seed);
    ASSERT_NE(generation, nullptr) << "seed " << seed;
    EXPECT_GT(generation->MemoryBytes(), 0u);
  }
  EXPECT_EQ(prebuilder.ReadyBytes(), 0u);
  EXPECT_EQ(prebuilder.Stats().taken, 6u);
}

TEST(StratifiedSweepTest, PrebuilderHonorsReadyPoolByteBudget) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 82);
  BfsSharingOptions bfs;
  bfs.index_samples = 64;
  auto estimator = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
  const size_t one_generation =
      estimator->BuildPreparedGeneration(1).MoveValue()->MemoryBytes();
  ASSERT_GT(one_generation, 0u);
  // Budget for ~1.5 generations: the pool may hold one ready generation,
  // never two; older ones are evicted as new builds land.
  GenerationPrebuilder prebuilder(*estimator, /*max_pending=*/8,
                                  /*num_builders=*/1,
                                  /*max_ready_bytes=*/one_generation * 3 / 2);
  EXPECT_TRUE(prebuilder.Request(10));
  EXPECT_TRUE(prebuilder.Request(11));
  EXPECT_TRUE(prebuilder.Request(12));
  while (prebuilder.Stats().built < 3) std::this_thread::yield();
  const GenerationPrebuilderStats stats = prebuilder.Stats();
  EXPECT_GE(stats.evicted, 2u);
  EXPECT_LE(stats.ready_bytes, one_generation * 3 / 2);
  // The newest generation survived the byte evictions.
  EXPECT_NE(prebuilder.Take(12), nullptr);
}

TEST(StratifiedSweepTest, IndexMemoryReportCountsPrebuiltPool) {
  IndexMemoryReport report;
  report.shared_bytes = 100;
  report.replica_bytes = 10;
  report.prebuilt_bytes = 50;
  EXPECT_EQ(report.total_bytes(), 160u);
}

}  // namespace
}  // namespace relcomp
