// Unit coverage for the size-aware per-source sweep memo (engine/sweep_cache)
// and the byte-budget admission of the result cache: LRU-by-bytes eviction,
// oversized-entry rejection, and stats accounting.

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/result_cache.h"
#include "engine/sweep_cache.h"

namespace relcomp {
namespace {

SweepCacheKey Key(NodeId source, uint64_t seed = 7) {
  SweepCacheKey key;
  key.kind = EstimatorKind::kMonteCarlo;
  key.source = source;
  key.num_samples = 100;
  key.seed = seed;
  return key;
}

std::shared_ptr<const std::vector<double>> Sweep(size_t n, double fill) {
  return std::make_shared<const std::vector<double>>(n, fill);
}

TEST(SweepCacheTest, LookupReturnsInsertedVectorByIdentity) {
  SweepCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  auto sweep = Sweep(64, 0.5);
  cache.Insert(Key(1), sweep);
  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), sweep.get());  // shared, not copied
  EXPECT_EQ(cache.bytes_in_use(), 64 * sizeof(double));

  const SweepCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SweepCacheTest, DistinctKeyFieldsDoNotAlias) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1, 7), Sweep(8, 0.1));
  EXPECT_EQ(cache.Lookup(Key(2, 7)), nullptr);   // other source
  EXPECT_EQ(cache.Lookup(Key(1, 8)), nullptr);   // other seed / generation
  SweepCacheKey other_kind = Key(1, 7);
  other_kind.kind = EstimatorKind::kBfsSharing;
  EXPECT_EQ(cache.Lookup(other_kind), nullptr);
  SweepCacheKey other_budget = Key(1, 7);
  other_budget.num_samples = 200;
  EXPECT_EQ(cache.Lookup(other_budget), nullptr);
  EXPECT_NE(cache.Lookup(Key(1, 7)), nullptr);
}

TEST(SweepCacheTest, EvictsLeastRecentlyUsedUnderBytePressure) {
  // Budget of 3 sweeps of 10 doubles each.
  SweepCache cache(3 * 10 * sizeof(double));
  cache.Insert(Key(1), Sweep(10, 0.1));
  cache.Insert(Key(2), Sweep(10, 0.2));
  cache.Insert(Key(3), Sweep(10, 0.3));
  EXPECT_EQ(cache.size(), 3u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(4), Sweep(10, 0.4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_NE(cache.Lookup(Key(4)), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.bytes_in_use(), cache.max_bytes());
}

TEST(SweepCacheTest, BigSweepEvictsManySmallOnes) {
  SweepCache cache(100 * sizeof(double));
  cache.Insert(Key(1), Sweep(40, 0.1));
  cache.Insert(Key(2), Sweep(40, 0.2));
  // 90 doubles only fit alongside neither of the 40s.
  cache.Insert(Key(3), Sweep(90, 0.3));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 2u);
  EXPECT_LE(cache.bytes_in_use(), cache.max_bytes());
}

TEST(SweepCacheTest, RejectsSweepLargerThanWholeBudget) {
  SweepCache cache(10 * sizeof(double));
  cache.Insert(Key(1), Sweep(5, 0.1));
  cache.Insert(Key(2), Sweep(11, 0.2));  // larger than the whole budget
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);  // untouched by the rejection
  EXPECT_EQ(cache.Stats().rejected, 1u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(SweepCacheTest, ReinsertReplacesAndReaccountsBytes) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(10, 0.1));
  cache.Insert(Key(1), Sweep(30, 0.2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), 30 * sizeof(double));
  EXPECT_EQ(cache.Stats().insertions, 1u);  // refresh, not a new entry
  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 30u);
}

TEST(SweepCacheTest, EvictionNeverInvalidatesAHandedOutSweep) {
  SweepCache cache(10 * sizeof(double));
  cache.Insert(Key(1), Sweep(10, 0.25));
  const auto held = cache.Lookup(Key(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key(2), Sweep(10, 0.5));  // evicts key 1
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  // The reader's shared_ptr keeps the vector alive and intact.
  EXPECT_EQ(held->size(), 10u);
  EXPECT_DOUBLE_EQ(held->front(), 0.25);
}

TEST(SweepCacheTest, ClearDropsEntriesKeepsCounters) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(10, 0.1));
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Stats().hits, 1u);  // counters survive Clear
}

// ---------------------------------------------------------------------------
// TTL'd warm entries (scout-warmed sweeps)
// ---------------------------------------------------------------------------

// Long enough that a test never crosses it, short enough to be a real TTL.
constexpr double kLongTtl = 3600.0;
// Already in the past by the time any later call reads the clock.
constexpr double kExpiredTtl = 1e-9;

TEST(SweepCacheTtlTest, WarmEntryServesWhileLive) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(16, 0.5), kLongTtl);
  EXPECT_TRUE(cache.Contains(Key(1)));
  const auto hit = cache.Lookup(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.Stats().expired, 0u);
}

TEST(SweepCacheTtlTest, ExpiredWarmIsAbsentAndReapedOnLookup) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(16, 0.5), kExpiredTtl);
  // Contains is a pure probe: reports absent, reaps nothing.
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_EQ(cache.size(), 1u);
  // Lookup reaps: miss, expired counter, bytes released.
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  const SweepCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // A reaped warm never counts as an eviction (that's byte pressure).
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SweepCacheTtlTest, HitPromotesWarmToImmortal) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(16, 0.5), /*ttl_seconds=*/0.1);
  // A consumer arrives while the warm is live: the hit promotes it.
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  // Outlive the original deadline — a promoted entry no longer expires.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(cache.Contains(Key(1)));
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Stats().expired, 0u);
  EXPECT_EQ(cache.Stats().hits, 2u);
}

TEST(SweepCacheTtlTest, ReinsertAppliesNewTtl) {
  SweepCache cache(1 << 20);
  // Immortal entry demoted to an expired warm by a re-insert.
  cache.Insert(Key(1), Sweep(16, 0.5));
  cache.Insert(Key(1), Sweep(16, 0.5), kExpiredTtl);
  EXPECT_FALSE(cache.Contains(Key(1)));
  // Expired warm resurrected by a query-led (TTL-less) re-insert.
  cache.Insert(Key(2), Sweep(16, 0.5), kExpiredTtl);
  cache.Insert(Key(2), Sweep(16, 0.5));
  EXPECT_TRUE(cache.Contains(Key(2)));
  ASSERT_NE(cache.Lookup(Key(2)), nullptr);
}

TEST(SweepCacheTtlTest, ImmortalDefaultNeverExpires) {
  SweepCache cache(1 << 20);
  cache.Insert(Key(1), Sweep(16, 0.5));  // ttl_seconds = 0: pre-TTL behavior
  EXPECT_TRUE(cache.Contains(Key(1)));
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Stats().expired, 0u);
}

// ---------------------------------------------------------------------------
// ResultCache byte-budget admission
// ---------------------------------------------------------------------------

ResultCacheKey RcKey(NodeId source, uint32_t k) {
  ResultCacheKey key;
  key.query = EngineQuery::TopK(source, k);
  key.kind = EstimatorKind::kMonteCarlo;
  key.num_samples = 100;
  key.seed = 42;
  return key;
}

ResultCacheValue RankedValue(size_t num_targets) {
  ResultCacheValue value;
  value.num_samples = 100;
  value.targets.resize(num_targets);
  for (size_t i = 0; i < num_targets; ++i) {
    value.targets[i] = ReliableTarget{static_cast<NodeId>(i), 0.5};
  }
  return value;
}

TEST(ResultCacheBytesTest, RankedPayloadChargedRealBytes) {
  const ResultCacheValue scalar(0.5, 100);
  const ResultCacheValue ranked = RankedValue(50);
  EXPECT_EQ(ResultCache::EntryBytes(ranked) - ResultCache::EntryBytes(scalar),
            50 * sizeof(ReliableTarget));

  ResultCache cache(1024, 1, /*max_bytes=*/1 << 20);
  cache.Insert(RcKey(0, 50), ranked);
  EXPECT_EQ(cache.bytes_in_use(), ResultCache::EntryBytes(ranked));
}

TEST(ResultCacheBytesTest, EvictsByBytesNotEntryCount) {
  // Entry capacity is huge; the byte budget holds ~3 of the 50-target
  // payloads. Eviction must kick in on bytes alone.
  const size_t entry_bytes = ResultCache::EntryBytes(RankedValue(50));
  ResultCache cache(1024, 1, 3 * entry_bytes);
  for (uint32_t i = 0; i < 6; ++i) {
    cache.Insert(RcKey(i, 50), RankedValue(50));
  }
  EXPECT_LE(cache.bytes_in_use(), cache.max_bytes());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Stats().evictions, 3u);
  // Most-recent survive, oldest were evicted.
  EXPECT_TRUE(cache.Lookup(RcKey(5, 50)).has_value());
  EXPECT_FALSE(cache.Lookup(RcKey(0, 50)).has_value());
}

TEST(ResultCacheBytesTest, UnlimitedBytesKeepsEntryCountSemantics) {
  ResultCache cache(4, 1);  // max_bytes = 0: entry-count LRU only
  for (uint32_t i = 0; i < 6; ++i) {
    cache.Insert(RcKey(i, 50), RankedValue(50));
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(ResultCacheBytesTest, RejectsEntryLargerThanShardBudget) {
  const size_t small_bytes = ResultCache::EntryBytes(RankedValue(2));
  ResultCache cache(1024, 1, 2 * small_bytes);
  cache.Insert(RcKey(0, 2), RankedValue(2));
  cache.Insert(RcKey(1, 500), RankedValue(500));  // outweighs the budget
  EXPECT_FALSE(cache.Lookup(RcKey(1, 500)).has_value());
  EXPECT_TRUE(cache.Lookup(RcKey(0, 2)).has_value());
  EXPECT_EQ(cache.Stats().rejected, 1u);
}

}  // namespace
}  // namespace relcomp
