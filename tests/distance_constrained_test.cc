#include "reliability/distance_constrained.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;
using testing::SamplingTolerance;

TEST(ExactDistanceConstrained, HopBudgetGates) {
  // 0 -> 1 -> 2 (each 0.5): within 1 hop R = 0; within 2 hops R = 0.25.
  const UncertainGraph g = LineGraph3(0.5, 0.5);
  EXPECT_DOUBLE_EQ(
      *ExactDistanceConstrainedReliability(g, {0, 2, /*max_hops=*/1}), 0.0);
  EXPECT_NEAR(*ExactDistanceConstrainedReliability(g, {0, 2, 2}), 0.25, 1e-12);
  EXPECT_NEAR(*ExactDistanceConstrainedReliability(g, {0, 2, 9}), 0.25, 1e-12);
}

TEST(ExactDistanceConstrained, ShortcutVsLongPath) {
  // Direct risky edge vs a safer 2-hop path: the 1-hop budget only sees the
  // direct edge.
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.2).CheckOK();
  b.AddEdge(0, 1, 0.9).CheckOK();
  b.AddEdge(1, 2, 0.9).CheckOK();
  const UncertainGraph g = b.Build().MoveValue();
  EXPECT_NEAR(*ExactDistanceConstrainedReliability(g, {0, 2, 1}), 0.2, 1e-12);
  const double full = *ExactReliabilityEnumeration(g, 0, 2);
  EXPECT_NEAR(*ExactDistanceConstrainedReliability(g, {0, 2, 2}), full, 1e-12);
}

TEST(ExactDistanceConstrained, UnlimitedBudgetEqualsPlainReliability) {
  for (uint64_t seed = 700; seed < 708; ++seed) {
    const UncertainGraph g = RandomSmallGraph(6, 12, 0.1, 0.9, seed);
    EXPECT_NEAR(*ExactDistanceConstrainedReliability(g, {0, 5, 64}),
                *ExactReliabilityEnumeration(g, 0, 5), 1e-10)
        << seed;
  }
}

TEST(DistanceConstrainedMc, MatchesExactOracle) {
  for (uint64_t seed = 710; seed < 718; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 14, 0.2, 0.8, seed);
    DistanceConstrainedMonteCarlo mc(g);
    for (const uint32_t h : {1u, 2u, 3u}) {
      const DistanceConstrainedQuery q{0, 6, h};
      const double exact = *ExactDistanceConstrainedReliability(g, q);
      const double estimate = *mc.Estimate(q, 12000, seed);
      EXPECT_NEAR(estimate, exact, SamplingTolerance(exact, 12000, 4.5))
          << "seed=" << seed << " h=" << h;
    }
  }
}

TEST(DistanceConstrainedRecursive, MatchesExactOracle) {
  for (uint64_t seed = 720; seed < 728; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 14, 0.2, 0.8, seed);
    DistanceConstrainedRecursive rhh(g);
    for (const uint32_t h : {2u, 3u}) {
      const DistanceConstrainedQuery q{0, 6, h};
      const double exact = *ExactDistanceConstrainedReliability(g, q);
      double sum = 0.0;
      constexpr int kRuns = 4;
      for (int i = 0; i < kRuns; ++i) {
        sum += *rhh.Estimate(q, 3000, seed * 11 + i);
      }
      EXPECT_NEAR(sum / kRuns, exact,
                  SamplingTolerance(exact, 3000 * kRuns, 5.0) + 0.01)
          << "seed=" << seed << " h=" << h;
    }
  }
}

TEST(DistanceConstrained, MonotoneInHopBudget) {
  const UncertainGraph g = RandomSmallGraph(8, 20, 0.3, 0.7, 730);
  DistanceConstrainedMonteCarlo mc(g);
  double prev = 0.0;
  for (uint32_t h = 1; h <= 6; ++h) {
    const double r = *mc.Estimate({0, 7, h}, 20000, 3);
    EXPECT_GE(r, prev - 0.01) << h;  // sampling slack
    prev = r;
  }
}

TEST(DistanceConstrained, DegenerateQueries) {
  const UncertainGraph g = DiamondGraph(0.5);
  DistanceConstrainedMonteCarlo mc(g);
  DistanceConstrainedRecursive rhh(g);
  EXPECT_DOUBLE_EQ(*mc.Estimate({1, 1, 3}, 10, 1), 1.0);
  EXPECT_DOUBLE_EQ(*rhh.Estimate({1, 1, 3}, 10, 1), 1.0);
  EXPECT_DOUBLE_EQ(*mc.Estimate({0, 3, 0}, 10, 1), 0.0);
  EXPECT_DOUBLE_EQ(*rhh.Estimate({0, 3, 0}, 10, 1), 0.0);
  EXPECT_FALSE(mc.Estimate({0, 99, 2}, 10, 1).ok());
  EXPECT_FALSE(rhh.Estimate({0, 3, 2}, 0, 1).ok());
}

TEST(DistanceConstrained, PaperWorkloadDistanceTwo) {
  // The benchmark's h=2 workloads: R_2(s, t) <= R(s, t) always.
  const UncertainGraph g = GraphFromString(
      "0 1 0.6\n1 2 0.6\n0 3 0.4\n3 4 0.9\n4 2 0.9\n");
  const double bounded = *ExactDistanceConstrainedReliability(g, {0, 2, 2});
  const double full = *ExactReliabilityEnumeration(g, 0, 2);
  EXPECT_LT(bounded, full);
  DistanceConstrainedMonteCarlo mc(g);
  EXPECT_NEAR(*mc.Estimate({0, 2, 2}, 30000, 5), bounded,
              SamplingTolerance(bounded, 30000, 4.5));
}

}  // namespace
}  // namespace relcomp
