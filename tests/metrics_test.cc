#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

TEST(RunningStats, MeanAndVarianceMatchTwoPass) {
  RunningStats stats;
  const double xs[] = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) stats.Add(x);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  // Two-pass sample variance: sum (x - 4)^2 / 4 = (9+4+1+0+36)/4 = 12.5.
  EXPECT_NEAR(stats.SampleVariance(), 12.5, 1e-12);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(12.5), 1e-12);
}

TEST(RunningStats, DegenerateCases) {
  RunningStats empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.SampleVariance(), 0.0);
  RunningStats one;
  one.Add(7.0);
  EXPECT_DOUBLE_EQ(one.mean(), 7.0);
  EXPECT_DOUBLE_EQ(one.SampleVariance(), 0.0);
}

TEST(RunningStats, ConstantSeriesHasZeroVariance) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(0.25);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.25);
  EXPECT_NEAR(stats.SampleVariance(), 0.0, 1e-18);
}

TEST(CombineDispersion, AveragesPairs) {
  std::vector<RunningStats> per_pair(2);
  per_pair[0].Add(0.4);
  per_pair[0].Add(0.6);  // mean .5, var .02
  per_pair[1].Add(0.1);
  per_pair[1].Add(0.1);  // mean .1, var 0
  const DispersionPoint point = CombineDispersion(per_pair);
  EXPECT_NEAR(point.avg_reliability, 0.3, 1e-12);
  EXPECT_NEAR(point.avg_variance, 0.01, 1e-12);
  EXPECT_NEAR(point.dispersion, 0.01 / 0.3, 1e-12);
}

TEST(CombineDispersion, ZeroReliabilityCountsAsResolved) {
  std::vector<RunningStats> per_pair(1);
  per_pair[0].Add(0.0);
  per_pair[0].Add(0.0);
  const DispersionPoint point = CombineDispersion(per_pair);
  EXPECT_DOUBLE_EQ(point.dispersion, 0.0);
}

TEST(CombineDispersion, EmptyInput) {
  const DispersionPoint point = CombineDispersion({});
  EXPECT_DOUBLE_EQ(point.avg_reliability, 0.0);
  EXPECT_DOUBLE_EQ(point.dispersion, 0.0);
}

TEST(RelativeError, MatchesEquationFourteen) {
  // RE = mean |est - ground| / ground.
  const double re = RelativeError({0.11, 0.18}, {0.10, 0.20});
  EXPECT_NEAR(re, (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(RelativeError, PerfectEstimatesGiveZero) {
  EXPECT_DOUBLE_EQ(RelativeError({0.3, 0.7}, {0.3, 0.7}), 0.0);
}

TEST(RelativeError, SkipsZeroGroundTruth) {
  const double re = RelativeError({0.5, 0.11}, {0.0, 0.10});
  EXPECT_NEAR(re, 0.1, 1e-12);
}

TEST(RelativeError, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(RelativeError({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError({0.5}, {}), 0.0);
}

TEST(PairwiseDeviation, MatchesEquationFifteen) {
  // For {1, 2, 4}: sum over ordered pairs |ri - rj| = 2*(1+3+2) = 12;
  // divide by n(n-1) = 6 -> 2.
  EXPECT_NEAR(PairwiseDeviation({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(PairwiseDeviation, IdenticalErrorsGiveZero) {
  EXPECT_DOUBLE_EQ(PairwiseDeviation({0.5, 0.5, 0.5, 0.5}), 0.0);
}

TEST(PairwiseDeviation, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(PairwiseDeviation({}), 0.0);
  EXPECT_DOUBLE_EQ(PairwiseDeviation({3.0}), 0.0);
}

TEST(PairwiseDeviation, SixEstimatorNormalization) {
  // The paper's D uses 1/(5*6) for six estimators; our n(n-1) matches.
  std::vector<double> re(6, 0.0);
  re[0] = 0.6;  // one outlier
  // sum |ri - rj| over ordered pairs = 2 * 5 * 0.6 = 6; / 30 = 0.2.
  EXPECT_NEAR(PairwiseDeviation(re), 0.2, 1e-12);
}

}  // namespace
}  // namespace relcomp
