// Persistence of convergence reports (the cross-binary cache used by the
// bench suite) and ExperimentContext's cache behaviour.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "eval/convergence.h"
#include "eval/experiment.h"
#include "graph/datasets.h"
#include "reliability/mc_sampling.h"

namespace relcomp {
namespace {

class ConvergenceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("relcomp_cache_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

ConvergenceReport SampleReport() {
  ConvergenceReport report;
  report.estimator_name = "MC";
  report.converged_k = 500;
  for (uint32_t k : {250u, 500u}) {
    KPoint point;
    point.k = k;
    point.avg_variance = 1.0 / k;
    point.avg_reliability = 0.4;
    point.dispersion = point.avg_variance / point.avg_reliability;
    point.avg_query_seconds = 0.001 * k;
    point.peak_memory_bytes = 4096 + k;
    point.per_pair_reliability = {0.39, 0.41, 0.40};
    report.points.push_back(std::move(point));
  }
  return report;
}

TEST_F(ConvergenceCacheTest, SaveLoadRoundTrip) {
  const ConvergenceReport original = SampleReport();
  ASSERT_TRUE(SaveConvergenceReport(original, Path("r.bin")).ok());
  const ConvergenceReport loaded =
      LoadConvergenceReport(Path("r.bin")).MoveValue();
  EXPECT_EQ(loaded.estimator_name, original.estimator_name);
  EXPECT_EQ(loaded.converged_k, original.converged_k);
  ASSERT_EQ(loaded.points.size(), original.points.size());
  for (size_t i = 0; i < loaded.points.size(); ++i) {
    EXPECT_EQ(loaded.points[i].k, original.points[i].k);
    EXPECT_DOUBLE_EQ(loaded.points[i].avg_variance,
                     original.points[i].avg_variance);
    EXPECT_DOUBLE_EQ(loaded.points[i].avg_reliability,
                     original.points[i].avg_reliability);
    EXPECT_EQ(loaded.points[i].peak_memory_bytes,
              original.points[i].peak_memory_bytes);
    EXPECT_EQ(loaded.points[i].per_pair_reliability,
              original.points[i].per_pair_reliability);
  }
}

TEST_F(ConvergenceCacheTest, MissingFileIsNotFound) {
  const auto result = LoadConvergenceReport(Path("missing.bin"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ConvergenceCacheTest, RejectsForeignFiles) {
  {
    std::ofstream out(Path("junk.bin"), std::ios::binary);
    out << "definitely not a convergence report";
  }
  EXPECT_FALSE(LoadConvergenceReport(Path("junk.bin")).ok());
}

TEST_F(ConvergenceCacheTest, DetectsTruncation) {
  ASSERT_TRUE(SaveConvergenceReport(SampleReport(), Path("t.bin")).ok());
  const auto size = std::filesystem::file_size(Path("t.bin"));
  std::filesystem::resize_file(Path("t.bin"), size / 2);
  EXPECT_FALSE(LoadConvergenceReport(Path("t.bin")).ok());
}

TEST_F(ConvergenceCacheTest, ExperimentContextWritesAndReusesCache) {
  BenchConfig config;
  config.scale = Scale::kTiny;
  config.num_pairs = 4;
  config.repeats = 3;
  config.initial_k = 100;
  config.step_k = 100;
  config.max_k = 300;
  config.dispersion_threshold = 1.0;  // converge immediately
  config.cache_dir = Path("ctx");
  config.verbose = false;

  ExperimentContext first(config);
  const auto a =
      first.GetConvergence(DatasetId::kLastFm, EstimatorKind::kMonteCarlo);
  ASSERT_TRUE(a.ok()) << a.status();
  // A cache file must now exist.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(Path("ctx"))) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // A second context with identical config must reproduce the exact result
  // from the cache (bit-identical doubles).
  ExperimentContext second(config);
  const auto b =
      second.GetConvergence(DatasetId::kLastFm, EstimatorKind::kMonteCarlo);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ((*a)->points.size(), (*b)->points.size());
  EXPECT_DOUBLE_EQ((*a)->points[0].avg_reliability,
                   (*b)->points[0].avg_reliability);
  EXPECT_DOUBLE_EQ((*a)->points[0].avg_variance, (*b)->points[0].avg_variance);
}

TEST_F(ConvergenceCacheTest, DifferentConfigsUseDifferentCacheKeys) {
  BenchConfig config;
  config.scale = Scale::kTiny;
  config.num_pairs = 4;
  config.repeats = 3;
  config.initial_k = 100;
  config.step_k = 100;
  config.max_k = 200;
  config.dispersion_threshold = 1.0;
  config.cache_dir = Path("keys");
  config.verbose = false;

  ExperimentContext a(config);
  ASSERT_TRUE(
      a.GetConvergence(DatasetId::kLastFm, EstimatorKind::kMonteCarlo).ok());
  config.num_pairs = 5;  // any knob change must miss the cache
  ExperimentContext b(config);
  ASSERT_TRUE(
      b.GetConvergence(DatasetId::kLastFm, EstimatorKind::kMonteCarlo).ok());
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(Path("keys"))) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

}  // namespace
}  // namespace relcomp
