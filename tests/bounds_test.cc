#include "reliability/bounds.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::DiamondGraph;
using testing::GraphFromString;
using testing::LineGraph3;
using testing::RandomSmallGraph;

TEST(MostReliablePath, FollowsBestProduct) {
  // Direct edge 0.3 vs two-hop 0.8 * 0.8 = 0.64: the path wins.
  const UncertainGraph g = GraphFromString("0 2 0.3\n0 1 0.8\n1 2 0.8\n");
  const ReliablePath path = MostReliablePath(g, 0, 2).MoveValue();
  ASSERT_TRUE(path.exists());
  EXPECT_NEAR(path.probability, 0.64, 1e-12);
  ASSERT_EQ(path.nodes.size(), 3u);
  EXPECT_EQ(path.nodes[0], 0u);
  EXPECT_EQ(path.nodes[1], 1u);
  EXPECT_EQ(path.nodes[2], 2u);
}

TEST(MostReliablePath, DirectEdgeWinsWhenStronger) {
  const UncertainGraph g = GraphFromString("0 2 0.9\n0 1 0.8\n1 2 0.8\n");
  const ReliablePath path = MostReliablePath(g, 0, 2).MoveValue();
  EXPECT_NEAR(path.probability, 0.9, 1e-12);
  EXPECT_EQ(path.nodes.size(), 2u);
}

TEST(MostReliablePath, UnreachableAndDegenerate) {
  const UncertainGraph g = GraphFromString("1 0 0.9\n");
  EXPECT_FALSE(MostReliablePath(g, 0, 1)->exists());
  const ReliablePath self = MostReliablePath(g, 0, 0).MoveValue();
  EXPECT_TRUE(self.exists());
  EXPECT_DOUBLE_EQ(self.probability, 1.0);
  EXPECT_FALSE(MostReliablePath(g, 0, 99).ok());
}

TEST(MostReliablePath, ProbabilityIsLowerBoundOnReliability) {
  for (uint64_t seed = 900; seed < 912; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 14, 0.2, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 6);
    const ReliablePath path = MostReliablePath(g, 0, 6).MoveValue();
    EXPECT_LE(path.probability, exact + 1e-12) << seed;
  }
}

TEST(LowerBound, DiamondIsExact) {
  // Two edge-disjoint paths are the whole reliability of the diamond.
  const UncertainGraph g = DiamondGraph(0.5);
  const double exact = 1.0 - 0.75 * 0.75;
  EXPECT_NEAR(*ReliabilityLowerBound(g, 0, 3), exact, 1e-12);
}

TEST(LowerBound, SeriesLineIsExact) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  EXPECT_NEAR(*ReliabilityLowerBound(g, 0, 2), 0.125, 1e-12);
}

TEST(LowerBound, MaxPathsCapsWork) {
  const UncertainGraph g = DiamondGraph(0.5);
  // One path only: bound drops to that path's probability.
  EXPECT_NEAR(*ReliabilityLowerBound(g, 0, 3, /*max_paths=*/1), 0.25, 1e-12);
}

TEST(UpperBound, SingleEdgeIsExact) {
  const UncertainGraph g = GraphFromString("0 1 0.37\n");
  EXPECT_NEAR(*ReliabilityUpperBound(g, 0, 1), 0.37, 1e-12);
}

TEST(UpperBound, SeriesTakesWeakestLink) {
  const UncertainGraph g = LineGraph3(0.5, 0.25);
  EXPECT_NEAR(*ReliabilityUpperBound(g, 0, 2), 0.25, 1e-12);
}

TEST(UpperBound, DiamondSourceCut) {
  const UncertainGraph g = DiamondGraph(0.5);
  // Best cut: the two source (or sink) edges: 1 - 0.5^2 = 0.75.
  EXPECT_NEAR(*ReliabilityUpperBound(g, 0, 3), 0.75, 1e-12);
}

TEST(UpperBound, CertainEdgesForceTrivialBound) {
  const UncertainGraph g = GraphFromString("0 1 1\n1 2 1\n");
  EXPECT_DOUBLE_EQ(*ReliabilityUpperBound(g, 0, 2), 1.0);
}

TEST(UpperBound, UnreachableIsZero) {
  const UncertainGraph g = GraphFromString("1 0 0.9\n");
  EXPECT_DOUBLE_EQ(*ReliabilityUpperBound(g, 0, 1), 0.0);
}

TEST(Bounds, BracketExactReliabilityOnRandomGraphs) {
  for (uint64_t seed = 920; seed < 940; ++seed) {
    const UncertainGraph g = RandomSmallGraph(7, 15, 0.1, 0.9, seed);
    const double exact = *ExactReliabilityEnumeration(g, 0, 6);
    const ReliabilityBounds bounds = *ComputeReliabilityBounds(g, 0, 6);
    EXPECT_LE(bounds.lower, exact + 1e-9) << seed;
    EXPECT_GE(bounds.upper, exact - 1e-9) << seed;
    EXPECT_LE(bounds.lower, bounds.upper + 1e-9) << seed;
  }
}

TEST(Bounds, TightOnTreelikeGraphs) {
  // With a unique path, lower == upper == exact.
  const UncertainGraph g = GraphFromString("0 1 0.6\n1 2 0.7\n2 3 0.8\n");
  const ReliabilityBounds bounds = *ComputeReliabilityBounds(g, 0, 3);
  EXPECT_NEAR(bounds.lower, 0.336, 1e-12);
  EXPECT_NEAR(bounds.upper, 0.6, 1e-12);  // weakest-link cut
}

}  // namespace
}  // namespace relcomp
