#include "reliability/top_k.h"

#include <gtest/gtest.h>

#include "reliability/exact.h"
#include "test_util.h"

namespace relcomp {
namespace {

using testing::GraphFromString;
using testing::RandomSmallGraph;

UncertainGraph StarGraph() {
  // Source 0 with direct edges of distinct strengths, plus a 2-hop tail.
  return GraphFromString(
      "0 1 0.9\n0 2 0.5\n0 3 0.1\n1 4 0.8\n");
}

TEST(TopKMonteCarlo, RanksByReliability) {
  const UncertainGraph g = StarGraph();
  const auto top = TopKReliableTargetsMonteCarlo(g, 0, 4, 20000, 1).MoveValue();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].node, 1u);                        // ~0.9
  EXPECT_EQ(top[1].node, 4u);                        // ~0.72
  EXPECT_EQ(top[2].node, 2u);                        // ~0.5
  EXPECT_EQ(top[3].node, 3u);                        // ~0.1
  EXPECT_NEAR(top[0].reliability, 0.9, 0.02);
  EXPECT_NEAR(top[1].reliability, 0.72, 0.02);
}

TEST(TopKMonteCarlo, KLimitsResultSize) {
  const UncertainGraph g = StarGraph();
  const auto top = TopKReliableTargetsMonteCarlo(g, 0, 2, 5000, 2).MoveValue();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
}

TEST(TopKMonteCarlo, ExcludesSourceAndUnreachable) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.5).CheckOK();
  b.AddEdge(3, 4, 0.9).CheckOK();  // unreachable island
  const UncertainGraph g = b.Build().MoveValue();
  const auto top = TopKReliableTargetsMonteCarlo(g, 0, 10, 5000, 3).MoveValue();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].node, 1u);
}

TEST(TopKMonteCarlo, ValidatesArguments) {
  const UncertainGraph g = StarGraph();
  EXPECT_FALSE(TopKReliableTargetsMonteCarlo(g, 99, 3, 100, 1).ok());
  EXPECT_FALSE(TopKReliableTargetsMonteCarlo(g, 0, 0, 100, 1).ok());
  EXPECT_FALSE(TopKReliableTargetsMonteCarlo(g, 0, 3, 0, 1).ok());
}

TEST(TopKBfsSharing, AgreesWithMonteCarloRanking) {
  const UncertainGraph g = StarGraph();
  BfsSharingOptions options;
  options.index_samples = 20000;
  auto estimator = BfsSharingEstimator::Create(g, options, 7).MoveValue();
  const auto top =
      TopKReliableTargetsBfsSharing(*estimator, 0, 4, 20000).MoveValue();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_EQ(top[1].node, 4u);
  EXPECT_EQ(top[2].node, 2u);
  EXPECT_NEAR(top[0].reliability, 0.9, 0.02);
}

TEST(TopKBfsSharing, MatchesExactPerTargetValues) {
  const UncertainGraph g = RandomSmallGraph(7, 14, 0.3, 0.8, 41);
  BfsSharingOptions options;
  options.index_samples = 30000;
  auto estimator = BfsSharingEstimator::Create(g, options, 8).MoveValue();
  const auto top =
      TopKReliableTargetsBfsSharing(*estimator, 0, 3, 30000).MoveValue();
  for (const ReliableTarget& target : top) {
    const double exact = *ExactReliabilityEnumeration(g, 0, target.node);
    EXPECT_NEAR(target.reliability, exact,
                testing::SamplingTolerance(exact, 30000, 5.0))
        << target.node;
  }
}

TEST(TopKBfsSharing, SharedBfsConsistentWithPairQueries) {
  // One ReliabilityFromSource sweep must equal per-pair Estimate calls over
  // the same index (same pre-sampled worlds, no resampling in between).
  const UncertainGraph g = RandomSmallGraph(10, 30, 0.2, 0.8, 42);
  BfsSharingOptions options;
  options.index_samples = 500;
  auto estimator = BfsSharingEstimator::Create(g, options, 9).MoveValue();
  const std::vector<double> sweep =
      estimator->ReliabilityFromSource(0, 500).MoveValue();
  for (NodeId t = 1; t < g.num_nodes(); ++t) {
    EstimateOptions opts;
    opts.num_samples = 500;
    EXPECT_DOUBLE_EQ(sweep[t], estimator->Estimate({0, t}, opts)->reliability)
        << t;
  }
}

TEST(TopKBfsSharing, ValidatesArguments) {
  const UncertainGraph g = StarGraph();
  BfsSharingOptions options;
  options.index_samples = 100;
  auto estimator = BfsSharingEstimator::Create(g, options, 10).MoveValue();
  EXPECT_FALSE(TopKReliableTargetsBfsSharing(*estimator, 99, 3, 100).ok());
  EXPECT_FALSE(TopKReliableTargetsBfsSharing(*estimator, 0, 0, 100).ok());
  EXPECT_FALSE(TopKReliableTargetsBfsSharing(*estimator, 0, 3, 101).ok());
}

}  // namespace
}  // namespace relcomp
