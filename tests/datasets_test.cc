#include "graph/datasets.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "graph/possible_world.h"

namespace relcomp {
namespace {

TEST(Datasets, AllSixBuildAtTinyScale) {
  for (DatasetId id : AllDatasetIds()) {
    const Result<Dataset> dataset = MakeDataset(id, Scale::kTiny, 1);
    ASSERT_TRUE(dataset.ok()) << DatasetName(id);
    EXPECT_GT(dataset->graph.num_nodes(), 100u) << DatasetName(id);
    EXPECT_GT(dataset->graph.num_edges(), 100u) << DatasetName(id);
    const EdgeProbStats stats = dataset->graph.ProbStats();
    EXPECT_GT(stats.mean, 0.0);
    EXPECT_LE(stats.mean, 1.0);
  }
}

TEST(Datasets, DeterministicInSeed) {
  const Dataset a = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 42).MoveValue();
  const Dataset b = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 42).MoveValue();
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e).tail, b.graph.edge(e).tail);
    EXPECT_DOUBLE_EQ(a.graph.edge(e).prob, b.graph.edge(e).prob);
  }
}

TEST(Datasets, SeedsChangeTheGraph) {
  const Dataset a = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 1).MoveValue();
  const Dataset b = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 2).MoveValue();
  bool any_difference = a.graph.num_edges() != b.graph.num_edges();
  for (EdgeId e = 0; !any_difference && e < a.graph.num_edges(); ++e) {
    any_difference = a.graph.edge(e).tail != b.graph.edge(e).tail ||
                     a.graph.edge(e).prob != b.graph.edge(e).prob;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Datasets, DblpVariantsShareTopologyDifferOnlyInProbs) {
  // The paper derives DBLP 0.2 and DBLP 0.05 from one crawl, varying mu.
  const Dataset d02 = MakeDataset(DatasetId::kDblp02, Scale::kTiny, 9).MoveValue();
  const Dataset d005 = MakeDataset(DatasetId::kDblp005, Scale::kTiny, 9).MoveValue();
  ASSERT_EQ(d02.graph.num_edges(), d005.graph.num_edges());
  for (EdgeId e = 0; e < d02.graph.num_edges(); ++e) {
    EXPECT_EQ(d02.graph.edge(e).tail, d005.graph.edge(e).tail);
    EXPECT_EQ(d02.graph.edge(e).head, d005.graph.edge(e).head);
    EXPECT_GT(d02.graph.edge(e).prob, d005.graph.edge(e).prob);
  }
}

TEST(Datasets, ScalesAreMonotone) {
  const Dataset tiny = MakeDataset(DatasetId::kNetHept, Scale::kTiny, 3).MoveValue();
  const Dataset small =
      MakeDataset(DatasetId::kNetHept, Scale::kSmall, 3).MoveValue();
  EXPECT_LT(tiny.graph.num_nodes(), small.graph.num_nodes());
}

TEST(Datasets, ProbabilityProfilesTrackTable2) {
  struct Expectation {
    DatasetId id;
    double mean;
    double tolerance;
  };
  const Expectation expectations[] = {
      {DatasetId::kLastFm, 0.29, 0.15},  // inverse out-degree; BA m=2 => ~0.3
      {DatasetId::kNetHept, 0.04, 0.02},
      {DatasetId::kAsTopology, 0.23, 0.06},
      {DatasetId::kDblp02, 0.33, 0.06},
      {DatasetId::kDblp005, 0.11, 0.04},
      {DatasetId::kBioMine, 0.27, 0.06},
  };
  for (const auto& e : expectations) {
    const Dataset d = MakeDataset(e.id, Scale::kSmall, 5).MoveValue();
    EXPECT_NEAR(d.graph.ProbStats().mean, e.mean, e.tolerance)
        << DatasetName(e.id);
  }
}

TEST(Datasets, BioMineIsDirected) {
  const Dataset d = MakeDataset(DatasetId::kBioMine, Scale::kTiny, 6).MoveValue();
  // A directed generator should produce asymmetric reachability somewhere.
  size_t mutual = 0;
  size_t checked = 0;
  for (EdgeId e = 0; e < std::min<size_t>(d.graph.num_edges(), 200); ++e) {
    const EdgeRecord& rec = d.graph.edge(e);
    bool reverse = false;
    for (const AdjEntry& a : d.graph.OutEdges(rec.head)) {
      reverse |= (a.neighbor == rec.tail);
    }
    mutual += reverse;
    ++checked;
  }
  EXPECT_LT(mutual, checked);  // not fully bidirected
}

TEST(Datasets, NamesAreStable) {
  EXPECT_STREQ(DatasetName(DatasetId::kLastFm), "lastfm");
  EXPECT_STREQ(DatasetDisplayName(DatasetId::kDblp005), "DBLP 0.05");
  EXPECT_EQ(AllDatasetIds().size(), static_cast<size_t>(kNumDatasets));
}

TEST(Scale, ParseRoundTrip) {
  for (Scale s : {Scale::kTiny, Scale::kSmall, Scale::kMedium, Scale::kLarge}) {
    const Result<Scale> parsed = ParseScale(ScaleName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseScale("gigantic").ok());
}

TEST(Scale, FromEnvHonorsVariable) {
  ::setenv("RELCOMP_SCALE", "tiny", 1);
  EXPECT_EQ(ScaleFromEnv(), Scale::kTiny);
  ::setenv("RELCOMP_SCALE", "bogus", 1);
  EXPECT_EQ(ScaleFromEnv(), Scale::kSmall);  // fallback
  ::unsetenv("RELCOMP_SCALE");
  EXPECT_EQ(ScaleFromEnv(), Scale::kSmall);
}

TEST(Datasets, TableRendersAllRows) {
  std::vector<Dataset> all;
  for (DatasetId id : AllDatasetIds()) {
    all.push_back(MakeDataset(id, Scale::kTiny, 2).MoveValue());
  }
  const std::string table = DatasetTable(all);
  for (DatasetId id : AllDatasetIds()) {
    EXPECT_NE(table.find(DatasetDisplayName(id)), std::string::npos);
  }
}

TEST(Datasets, GraphsAreWellConnectedEnoughForQueries) {
  // 2-hop workloads must exist: check some node has a 2-hop neighborhood.
  for (DatasetId id : AllDatasetIds()) {
    const Dataset d = MakeDataset(id, Scale::kTiny, 8).MoveValue();
    bool found = false;
    for (NodeId s = 0; s < d.graph.num_nodes() && !found; ++s) {
      const std::vector<uint32_t> dist = HopDistances(d.graph, s);
      for (NodeId v = 0; v < d.graph.num_nodes() && !found; ++v) {
        found = (dist[v] == 2);
      }
    }
    EXPECT_TRUE(found) << DatasetName(id);
  }
}

}  // namespace
}  // namespace relcomp
