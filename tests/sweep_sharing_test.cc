// Engine-level coverage of the sweep-sharing layer: one same-source mixed
// batch executes exactly one EstimateFromSource per distinct source
// (stats-verified), derived top-k / reliable-set answers are bit-identical to
// the standalone APIs, the SweepCache evicts under byte pressure without
// changing answers, and the background generation prebuilder is deterministic
// on/off at 1/2/8 threads.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/generation_prebuilder.h"
#include "engine/query_engine.h"
#include "reliability/bfs_sharing.h"
#include "reliability/reliable_set.h"
#include "reliability/top_k.h"
#include "test_util.h"

namespace relcomp {
namespace {

using ::relcomp::testing::RandomSmallGraph;

EngineOptions BaseOptions(size_t threads, EstimatorKind kind) {
  EngineOptions options;
  options.num_threads = threads;
  options.kind = kind;
  options.num_samples = 200;
  options.seed = 20190412;
  return options;
}

/// The hot pattern the sweep layer exists for: many parameterizations of a
/// few sources — top-k at several k, reliable-set at several eta, plus an
/// s-t query — each repeated, interleaved across sources.
std::vector<EngineQuery> SameSourceMix(const std::vector<NodeId>& sources,
                                       size_t repeats) {
  std::vector<EngineQuery> queries;
  for (size_t r = 0; r < repeats; ++r) {
    for (const NodeId s : sources) {
      queries.push_back(EngineQuery::TopK(s, 5));
      queries.push_back(EngineQuery::TopK(s, 10));
      queries.push_back(EngineQuery::ReliableSet(s, 0.2));
      queries.push_back(EngineQuery::ReliableSet(s, 0.6));
      queries.push_back(EngineQuery::St(s, (s + 3) % 20));
    }
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<EngineResult>& a,
                        const std::vector<EngineResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].query.Describe());
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    EXPECT_EQ(std::memcmp(&a[i].reliability, &b[i].reliability,
                          sizeof(double)),
              0);
    ASSERT_EQ(a[i].targets.size(), b[i].targets.size());
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      EXPECT_EQ(a[i].targets[j].node, b[i].targets[j].node);
      EXPECT_EQ(std::memcmp(&a[i].targets[j].reliability,
                            &b[i].targets[j].reliability, sizeof(double)),
                0);
    }
  }
}

TEST(SweepSharingTest, SameSourceMixedBatchRunsOneSweepPerSource) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 51);
  const std::vector<NodeId> sources = {2, 7, 11};
  const std::vector<EngineQuery> queries = SameSourceMix(sources, 4);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    for (const bool cache : {true, false}) {
      SCOPED_TRACE(cache);
      EngineOptions options = BaseOptions(4, kind);
      options.enable_cache = cache;
      auto engine = QueryEngine::Create(graph, options).MoveValue();
      const std::vector<EngineResult> results =
          engine->RunBatch(queries).MoveValue();
      for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;

      // The gate: with the sweep memo on, at most one EstimateFromSource
      // per distinct (source, generation) — generations are per-source here,
      // so per distinct source — no matter how many k / eta / repeats ask.
      const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
      EXPECT_LE(snapshot.sweep_executed, sources.size());
      const uint64_t sweep_queries =
          snapshot.queries_of(WorkloadKind::kTopK) +
          snapshot.queries_of(WorkloadKind::kReliableSet);
      EXPECT_EQ(sweep_queries, 16 * sources.size());
      // Partition invariant: every sweep-kind query that reached the
      // compute path (neither a cache hit nor query-level coalesced)
      // resolved through exactly one of the three sweep outcomes — plus one
      // sweep_executed per scout-led warm, which has no query behind it
      // (its queries land in sweep_hits / sweep_coalesced).
      uint64_t compute_path_sweeps = 0;
      for (const EngineResult& r : results) {
        if (IsSweepWorkload(r.query.workload) && !r.cache_hit &&
            !r.coalesced) {
          ++compute_path_sweeps;
        }
      }
      EXPECT_EQ(snapshot.sweep_hits + snapshot.sweep_coalesced +
                    snapshot.sweep_executed,
                compute_path_sweeps + snapshot.scout_warms);
    }
  }
}

TEST(SweepSharingTest, DerivedAnswersMatchStandaloneApisBitwise) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 52);
  EngineOptions options = BaseOptions(4, EstimatorKind::kMonteCarlo);
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  const std::vector<EngineQuery> queries = SameSourceMix({3, 9}, 2);
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();

  for (size_t i = 0; i < queries.size(); ++i) {
    const EngineQuery& query = queries[i];
    ASSERT_TRUE(results[i].ok()) << results[i].status;
    if (query.workload == WorkloadKind::kTopK) {
      const std::vector<ReliableTarget> expected =
          TopKReliableTargetsMonteCarlo(graph, query.source, query.k,
                                        options.num_samples,
                                        engine->QuerySeed(query))
              .MoveValue();
      ASSERT_EQ(results[i].targets.size(), expected.size());
      for (size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(results[i].targets[j].node, expected[j].node);
        EXPECT_EQ(std::memcmp(&results[i].targets[j].reliability,
                              &expected[j].reliability, sizeof(double)),
                  0);
      }
    } else if (query.workload == WorkloadKind::kReliableSet) {
      const ReliableSetResult expected =
          ReliableSetMonteCarlo(graph, query.source, query.eta,
                                options.num_samples, engine->QuerySeed(query))
              .MoveValue();
      ASSERT_EQ(results[i].targets.size(), expected.members.size());
      for (size_t j = 0; j < expected.members.size(); ++j) {
        EXPECT_EQ(results[i].targets[j].node, expected.members[j].node);
        EXPECT_EQ(std::memcmp(&results[i].targets[j].reliability,
                              &expected.members[j].reliability,
                              sizeof(double)),
                  0);
      }
    }
  }
  // The sharing actually happened (not just correct answers): 2 sources,
  // many parameterizations, <= 2 sweeps.
  EXPECT_LE(engine->StatsSnapshot().sweep_executed, 2u);
}

TEST(SweepSharingTest, SweepSeedIgnoresParametersButNotSourceOrBudget) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 53);
  auto engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  EXPECT_EQ(engine->QuerySeed(EngineQuery::TopK(4, 5)),
            engine->QuerySeed(EngineQuery::TopK(4, 99)));
  EXPECT_EQ(engine->QuerySeed(EngineQuery::TopK(4, 5)),
            engine->QuerySeed(EngineQuery::ReliableSet(4, 0.7)));
  EXPECT_EQ(engine->QuerySeed(EngineQuery::TopK(4, 5)), engine->SweepSeed(4));
  EXPECT_NE(engine->SweepSeed(4), engine->SweepSeed(5));

  // Different sample budgets are different sweeps (and different engines'
  // master seeds never alias, as before).
  EngineOptions other = BaseOptions(2, EstimatorKind::kMonteCarlo);
  other.num_samples = 500;
  auto other_engine = QueryEngine::Create(graph, other).MoveValue();
  EXPECT_NE(engine->SweepSeed(4), other_engine->SweepSeed(4));
}

TEST(SweepSharingTest, DeterministicAcrossThreadsCachesAndSweepToggles) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 54);
  const std::vector<EngineQuery> queries = SameSourceMix({1, 6, 13}, 3);

  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    EngineOptions reference_options = BaseOptions(1, kind);
    reference_options.enable_sweep_cache = false;
    reference_options.enable_coalescing = false;
    reference_options.enable_generation_prebuild = false;
    auto reference_engine =
        QueryEngine::Create(graph, reference_options).MoveValue();
    const std::vector<EngineResult> reference =
        reference_engine->RunBatch(queries).MoveValue();

    for (const size_t threads : {1u, 2u, 8u}) {
      for (const bool sweep_cache : {true, false}) {
        for (const bool prebuild : {true, false}) {
          SCOPED_TRACE(threads);
          SCOPED_TRACE(sweep_cache);
          SCOPED_TRACE(prebuild);
          EngineOptions options = BaseOptions(threads, kind);
          options.enable_sweep_cache = sweep_cache;
          options.enable_generation_prebuild = prebuild;
          auto engine = QueryEngine::Create(graph, options).MoveValue();
          ExpectBitIdentical(reference,
                             engine->RunBatch(queries).MoveValue());
        }
      }
    }
  }
}

TEST(SweepSharingTest, SweepCacheEvictionUnderBytePressureKeepsAnswers) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 55);
  const std::vector<EngineQuery> queries = SameSourceMix({0, 5, 10, 15}, 2);

  EngineOptions roomy = BaseOptions(2, EstimatorKind::kMonteCarlo);
  auto roomy_engine = QueryEngine::Create(graph, roomy).MoveValue();
  const std::vector<EngineResult> expected =
      roomy_engine->RunBatch(queries).MoveValue();

  // Budget of ~1.5 sweeps (20 nodes * 8 bytes = 160 bytes each): constant
  // eviction churn across the 4 sources, answers unchanged.
  EngineOptions tight = roomy;
  tight.enable_cache = false;  // force every repeat back through the memo
  tight.sweep_cache_max_bytes = 240;
  auto tight_engine = QueryEngine::Create(graph, tight).MoveValue();
  ExpectBitIdentical(expected, tight_engine->RunBatch(queries).MoveValue());
  const SweepCacheStats stats = tight_engine->sweep_cache()->Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, tight.sweep_cache_max_bytes);
  // Churn costs sweeps: more than one per source, but still every answer
  // bit-identical (checked above).
  EXPECT_GE(tight_engine->StatsSnapshot().sweep_executed, 4u);
}

TEST(SweepSharingTest, ConcurrentDistinctParamsCoalesceAtSweepLevel) {
  // 32 different-k top-k queries + 32 different-eta reliable-set queries for
  // ONE source, submitted at once: distinct result-cache keys (no query-level
  // coalescing possible), yet at most one sweep executes when the memo and
  // sweep flights are on.
  const UncertainGraph graph = RandomSmallGraph(30, 90, 0.3, 0.9, 56);
  std::vector<EngineQuery> queries;
  for (uint32_t k = 1; k <= 32; ++k) queries.push_back(EngineQuery::TopK(9, k));
  for (uint32_t i = 0; i < 32; ++i) {
    queries.push_back(EngineQuery::ReliableSet(9, i / 32.0));
  }
  auto engine =
      QueryEngine::Create(graph, BaseOptions(8, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  EXPECT_EQ(snapshot.sweep_executed, 1u);
  // 63 queries shared the one sweep — 64 when the scout led it (then no
  // query was the leader and all of them derived).
  EXPECT_EQ(snapshot.sweep_hits + snapshot.sweep_coalesced,
            63u + snapshot.scout_warms);
  EXPECT_EQ(snapshot.executed, 64u);  // every query derived its own payload
}

TEST(SweepSharingTest, PrebuilderAdoptsBackgroundGenerations) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 57);
  EngineOptions options = BaseOptions(2, EstimatorKind::kBfsSharing);
  options.factory.bfs_sharing.index_samples = 256;
  options.enable_cache = false;  // every query must prepare + compute
  auto engine = QueryEngine::Create(graph, options).MoveValue();
  ASSERT_NE(engine->prebuilder(), nullptr);

  std::vector<EngineQuery> queries;
  for (NodeId s = 0; s < 12; ++s) {
    queries.push_back(EngineQuery::St(s, (s + 4) % 20));
  }
  const std::vector<EngineResult> results =
      engine->RunBatch(queries).MoveValue();
  for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
  const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
  // Some generations were adopted from the background builder (the first
  // query may race ahead of the builder and resample inline; later ones
  // overlap). Requested/built/taken counters stay consistent.
  EXPECT_GT(snapshot.prebuilder.requested, 0u);
  EXPECT_EQ(snapshot.prebuilt_used, snapshot.prebuilder.taken);
  EXPECT_LE(snapshot.prebuilder.taken, snapshot.prebuilder.built);

  // MC has no prepared-generation surface: no prebuilder is spun up.
  auto mc_engine =
      QueryEngine::Create(graph, BaseOptions(2, EstimatorKind::kMonteCarlo))
          .MoveValue();
  EXPECT_EQ(mc_engine->prebuilder(), nullptr);
}

TEST(SweepSharingTest, PrebuilderEvictsStrandedReadyGenerations) {
  // Stranded ready generations (built for queries that were then served
  // from the result cache) must not wedge the builder shut at the pending
  // bound: the oldest ready entry is evicted to make room.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 60);
  BfsSharingOptions bfs;
  bfs.index_samples = 64;
  auto estimator = BfsSharingEstimator::Create(graph, bfs, 1).MoveValue();
  GenerationPrebuilder prebuilder(*estimator, /*max_pending=*/2);
  EXPECT_TRUE(prebuilder.Request(101));
  EXPECT_TRUE(prebuilder.Request(102));
  while (prebuilder.Stats().built < 2) std::this_thread::yield();
  // At the bound with both slots ready: a new request evicts the oldest.
  EXPECT_TRUE(prebuilder.Request(103));
  EXPECT_EQ(prebuilder.Stats().evicted, 1u);
  EXPECT_EQ(prebuilder.Take(101), nullptr);  // the evicted one
  EXPECT_NE(prebuilder.Take(102), nullptr);  // survivor, still adoptable
}

TEST(SweepSharingTest, SweepAndDistanceQueriesReportPeakMemory) {
  // The MemoryTracker plumbing: WorkloadResult::peak_memory_bytes (and thus
  // the engine's peak-mem stat) must be non-zero for sweep and distance
  // queries, not just s-t.
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 58);
  for (const EstimatorKind kind :
       {EstimatorKind::kMonteCarlo, EstimatorKind::kBfsSharing}) {
    SCOPED_TRACE(EstimatorKindName(kind));
    auto engine = QueryEngine::Create(graph, BaseOptions(2, kind)).MoveValue();
    std::vector<EngineQuery> queries = {EngineQuery::TopK(0, 5),
                                        EngineQuery::ReliableSet(1, 0.3)};
    if (kind == EstimatorKind::kMonteCarlo) {
      queries.push_back(EngineQuery::Distance(2, 9, 3));
    }
    const std::vector<EngineResult> results =
        engine->RunBatch(queries).MoveValue();
    for (const EngineResult& r : results) ASSERT_TRUE(r.ok()) << r.status;
    EXPECT_GT(engine->StatsSnapshot().peak_memory_bytes, 0u);
  }
}

TEST(SweepSharingTest, StreamSharesSweepsLikeBatches) {
  const UncertainGraph graph = RandomSmallGraph(20, 60, 0.3, 0.9, 59);
  const std::vector<EngineQuery> queries = SameSourceMix({4, 8}, 3);
  auto batch_engine =
      QueryEngine::Create(graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
          .MoveValue();
  const std::vector<EngineResult> batch =
      batch_engine->RunBatch(queries).MoveValue();
  auto stream_engine =
      QueryEngine::Create(graph, BaseOptions(3, EstimatorKind::kMonteCarlo))
          .MoveValue();
  for (const EngineQuery& query : queries) {
    ASSERT_TRUE(stream_engine->Submit(query).ok());
  }
  ExpectBitIdentical(batch, stream_engine->Drain().MoveValue());
  EXPECT_LE(stream_engine->StatsSnapshot().sweep_executed, 2u);
}

}  // namespace
}  // namespace relcomp
