// Property sweep: every headline estimator on every dataset analogue (all
// six probability models), checking the invariants that hold regardless of
// topology or probability regime.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "reliability/bounds.h"
#include "reliability/estimator_factory.h"

namespace relcomp {
namespace {

struct SweepCase {
  DatasetId dataset;
  EstimatorKind estimator;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = std::string(DatasetName(info.param.dataset)) + "_" +
                     EstimatorKindName(info.param.estimator);
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name;
}

class DatasetEstimatorSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const Dataset& GetDataset(DatasetId id) {
    static std::map<int, Dataset>* cache = new std::map<int, Dataset>();
    auto it = cache->find(static_cast<int>(id));
    if (it == cache->end()) {
      it = cache
               ->emplace(static_cast<int>(id),
                         MakeDataset(id, Scale::kTiny, 3).MoveValue())
               .first;
    }
    return it->second;
  }

  static const std::vector<ReliabilityQuery>& GetQueries(DatasetId id) {
    static std::map<int, std::vector<ReliabilityQuery>>* cache =
        new std::map<int, std::vector<ReliabilityQuery>>();
    auto it = cache->find(static_cast<int>(id));
    if (it == cache->end()) {
      QueryGenOptions options;
      options.num_pairs = 5;
      options.seed = 17;
      it = cache
               ->emplace(static_cast<int>(id),
                         GenerateQueries(GetDataset(id).graph, options)
                             .MoveValue())
               .first;
    }
    return it->second;
  }
};

TEST_P(DatasetEstimatorSweep, EstimatesAreValidAndBracketedByBounds) {
  const SweepCase& c = GetParam();
  const Dataset& dataset = GetDataset(c.dataset);
  const auto& queries = GetQueries(c.dataset);
  FactoryOptions factory;
  factory.bfs_sharing.index_samples = 1200;
  auto estimator =
      MakeEstimator(c.estimator, dataset.graph, factory).MoveValue();

  for (const ReliabilityQuery& q : queries) {
    EstimateOptions opts;
    opts.num_samples = 1200;
    opts.seed = 7;
    const Result<EstimateResult> result = estimator->Estimate(q, opts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->reliability, 0.0);
    EXPECT_LE(result->reliability, 1.0);
    EXPECT_GE(result->seconds, 0.0);

    // Polynomial-time bounds must bracket any sane estimate (with a noise
    // allowance of ~4 binomial standard errors at K=1200, plus the w=2
    // ProbTree aggregation slack).
    const ReliabilityBounds bounds =
        *ComputeReliabilityBounds(dataset.graph, q.source, q.target);
    const double slack =
        4.0 * std::sqrt(0.25 / 1200.0) + 0.01;  // worst-case binomial SE
    EXPECT_GE(result->reliability, bounds.lower - slack)
        << q.source << "->" << q.target;
    EXPECT_LE(result->reliability, bounds.upper + slack)
        << q.source << "->" << q.target;
  }
}

TEST_P(DatasetEstimatorSweep, RepeatedQueriesAreDeterministic) {
  const SweepCase& c = GetParam();
  const Dataset& dataset = GetDataset(c.dataset);
  const ReliabilityQuery q = GetQueries(c.dataset).front();
  FactoryOptions factory;
  factory.bfs_sharing.index_samples = 600;
  auto estimator =
      MakeEstimator(c.estimator, dataset.graph, factory).MoveValue();
  EstimateOptions opts;
  opts.num_samples = 600;
  opts.seed = 99;
  const double r1 = estimator->Estimate(q, opts)->reliability;
  const double r2 = estimator->Estimate(q, opts)->reliability;
  EXPECT_DOUBLE_EQ(r1, r2);
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (DatasetId dataset : AllDatasetIds()) {
    for (EstimatorKind estimator : TheSixEstimators()) {
      cases.push_back({dataset, estimator});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetEstimatorSweep,
                         ::testing::ValuesIn(AllSweepCases()), SweepName);

}  // namespace
}  // namespace relcomp
