#include "engine/result_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace relcomp {
namespace {

ResultCacheKey Key(NodeId s, NodeId t, uint64_t seed = 7,
                   uint32_t k = 1000,
                   EstimatorKind kind = EstimatorKind::kMonteCarlo) {
  return ResultCacheKey{EngineQuery::St(s, t), kind, k, seed};
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(8, 1);
  EXPECT_FALSE(cache.Lookup(Key(0, 1)).has_value());
  cache.Insert(Key(0, 1), {0.5, 1000});
  const auto hit = cache.Lookup(Key(0, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->reliability, 0.5);
  EXPECT_EQ(hit->num_samples, 1000u);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCacheTest, KeyDistinguishesEveryField) {
  ResultCache cache(16, 1);
  cache.Insert(Key(0, 1), {0.5, 1000});
  EXPECT_FALSE(cache.Lookup(Key(1, 0)).has_value());         // swapped s-t
  EXPECT_FALSE(cache.Lookup(Key(0, 1, 8)).has_value());      // other seed
  EXPECT_FALSE(cache.Lookup(Key(0, 1, 7, 500)).has_value()); // other K
  EXPECT_FALSE(
      cache.Lookup(Key(0, 1, 7, 1000, EstimatorKind::kRecursive)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(0, 1)).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2, 1);  // one shard so the LRU order is global
  cache.Insert(Key(0, 1), {0.1, 10});
  cache.Insert(Key(0, 2), {0.2, 10});
  ASSERT_TRUE(cache.Lookup(Key(0, 1)).has_value());  // refresh (0,1)
  cache.Insert(Key(0, 3), {0.3, 10});                // evicts (0,2)
  EXPECT_TRUE(cache.Lookup(Key(0, 1)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(0, 2)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(0, 3)).has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2, 1);
  cache.Insert(Key(0, 1), {0.1, 10});
  cache.Insert(Key(0, 1), {0.9, 20});
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.Lookup(Key(0, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->reliability, 0.9);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsStats) {
  ResultCache cache(8, 2);
  cache.Insert(Key(0, 1), {0.1, 10});
  ASSERT_TRUE(cache.Lookup(Key(0, 1)).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(0, 1)).has_value());
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(ResultCacheTest, ShardCountRoundsUpAndCapsAtCapacity) {
  EXPECT_EQ(ResultCache(100, 3).num_shards(), 4u);
  EXPECT_EQ(ResultCache(2, 8).num_shards(), 2u);   // shards <= capacity
  EXPECT_EQ(ResultCache(0, 0).num_shards(), 1u);   // degenerate clamps
  EXPECT_EQ(ResultCache(0, 0).capacity(), 1u);
}

TEST(ResultCacheTest, CapacityHoldsAcrossShards) {
  ResultCache cache(64, 8);
  for (NodeId i = 0; i < 1000; ++i) cache.Insert(Key(i, i + 1), {0.5, 10});
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GE(cache.Stats().evictions, 1000u - 64u);
}

TEST(ResultCacheTest, WorkloadTagIsolatesKeys) {
  // Four workload kinds over the same nodes/parameters: four distinct keys.
  ResultCache cache(16, 1);
  const ResultCacheKey st{EngineQuery::St(0, 5),
                          EstimatorKind::kMonteCarlo, 1000, 7};
  const ResultCacheKey topk{EngineQuery::TopK(0, 5),
                            EstimatorKind::kMonteCarlo, 1000, 7};
  const ResultCacheKey set{EngineQuery::ReliableSet(0, 0.5),
                           EstimatorKind::kMonteCarlo, 1000, 7};
  const ResultCacheKey dist{EngineQuery::Distance(0, 5, 5),
                            EstimatorKind::kMonteCarlo, 1000, 7};
  cache.Insert(st, {0.1, 10});
  EXPECT_FALSE(cache.Lookup(topk).has_value());
  EXPECT_FALSE(cache.Lookup(set).has_value());
  EXPECT_FALSE(cache.Lookup(dist).has_value());
  cache.Insert(topk, {0.2, 10});
  cache.Insert(set, {0.3, 10});
  cache.Insert(dist, {0.4, 10});
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_DOUBLE_EQ(cache.Lookup(st)->reliability, 0.1);
  EXPECT_DOUBLE_EQ(cache.Lookup(dist)->reliability, 0.4);
}

TEST(ResultCacheTest, EntriesExpireAfterTtl) {
  ResultCache cache(8, 1);
  cache.Insert(Key(0, 1), {0.5, 10}, /*ttl_seconds=*/1e-9);
  cache.Insert(Key(0, 2), {0.7, 10});  // immortal
  // The tiny TTL has certainly elapsed by now: the entry is dropped on the
  // lookup that discovers it and the lookup is a miss.
  EXPECT_FALSE(cache.Lookup(Key(0, 1)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(0, 2)).has_value());
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A long TTL keeps the entry alive.
  cache.Insert(Key(0, 3), {0.9, 10}, /*ttl_seconds=*/3600.0);
  EXPECT_TRUE(cache.Lookup(Key(0, 3)).has_value());
  // Reinsert refreshes the deadline (and can remove it).
  cache.Insert(Key(0, 1), {0.5, 10}, /*ttl_seconds=*/3600.0);
  cache.Insert(Key(0, 1), {0.6, 10});
  EXPECT_DOUBLE_EQ(cache.Lookup(Key(0, 1))->reliability, 0.6);
}

TEST(ResultCacheTest, NegativeEntriesCountSeparately) {
  ResultCache cache(8, 1);
  ResultCacheValue failure;
  failure.status = Status::InvalidArgument("K exceeds L");
  cache.Insert(Key(0, 1), failure);
  const auto hit = cache.Lookup(Key(0, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative());
  EXPECT_EQ(hit->status.code(), StatusCode::kInvalidArgument);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.lookups(), 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(ResultCacheTest, CachesRankedTargetPayloads) {
  ResultCache cache(8, 1);
  ResultCacheValue value;
  value.num_samples = 500;
  value.targets = {{3, 0.9}, {7, 0.4}};
  const ResultCacheKey key{EngineQuery::TopK(0, 2),
                           EstimatorKind::kMonteCarlo, 500, 7};
  cache.Insert(key, value);
  const auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->targets.size(), 2u);
  EXPECT_EQ(hit->targets[0].node, 3u);
  EXPECT_DOUBLE_EQ(hit->targets[0].reliability, 0.9);
  EXPECT_EQ(hit->targets[1].node, 7u);
}

TEST(ResultCacheTest, TransientStatusesAreNeverCached) {
  // Regression: kUnavailable / kDeadlineExceeded / kCancelled describe the
  // *submission* (shed, expired, cancelled), not the answer. Negative-caching
  // one would fail future deadline-free queries for the whole backoff TTL.
  ResultCache cache(8, 1);
  for (const Status& transient :
       {Status::Unavailable("shed"), Status::DeadlineExceeded("expired"),
        Status::Cancelled("caller gave up")}) {
    ResultCacheValue value;
    value.status = transient;
    cache.Insert(Key(0, 1), value, /*ttl_seconds=*/3600.0);
    EXPECT_FALSE(cache.Lookup(Key(0, 1)).has_value())
        << StatusCodeName(transient.code());
  }
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_EQ(cache.size(), 0u);

  // Genuine per-query failures still negative-cache (engine_workload_test
  // depends on kInvalidArgument backoff).
  ResultCacheValue invalid;
  invalid.status = Status::InvalidArgument("K exceeds L");
  cache.Insert(Key(0, 1), invalid, /*ttl_seconds=*/3600.0);
  ASSERT_TRUE(cache.Lookup(Key(0, 1)).has_value());
}

TEST(ResultCacheTest, StaleWindowServesExpiredEntriesOnce) {
  ResultCache cache(8, 1);
  cache.Insert(Key(0, 1), {0.5, 10}, /*ttl_seconds=*/1e-9);  // already expired

  // Plain Lookup reaps; LookupStale inside the window serves instead.
  StaleLookupResult first = cache.LookupStale(Key(0, 1), /*max_stale=*/3600.0);
  ASSERT_TRUE(first.value.has_value());
  EXPECT_TRUE(first.stale);
  EXPECT_TRUE(first.refresh_owner) << "first stale observer owns the refresh";
  EXPECT_DOUBLE_EQ(first.value->reliability, 0.5);

  // The refresh is debounced: later stale observers serve but do not own.
  StaleLookupResult second = cache.LookupStale(Key(0, 1), 3600.0);
  ASSERT_TRUE(second.value.has_value());
  EXPECT_TRUE(second.stale);
  EXPECT_FALSE(second.refresh_owner);

  // A failed refresh re-arms the episode; the next observer owns again.
  cache.ClearRefreshPending(Key(0, 1));
  EXPECT_TRUE(cache.LookupStale(Key(0, 1), 3600.0).refresh_owner);

  // A landed refresh resets everything: live entry, no stale flag.
  cache.Insert(Key(0, 1), {0.5, 10}, /*ttl_seconds=*/3600.0);
  StaleLookupResult fresh = cache.LookupStale(Key(0, 1), 3600.0);
  ASSERT_TRUE(fresh.value.has_value());
  EXPECT_FALSE(fresh.stale);
  EXPECT_FALSE(fresh.refresh_owner);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_served, 3u);
  EXPECT_EQ(stats.hits, 4u);  // stale serves still count as hits
}

TEST(ResultCacheTest, StaleWindowNeverServesNegativesOrAncientEntries) {
  ResultCache cache(8, 1);
  // Negative entries are a failure-backoff device: serving one stale would
  // extend the backoff past its TTL. They reap exactly as without SWR.
  ResultCacheValue failure;
  failure.status = Status::InvalidArgument("bad K");
  cache.Insert(Key(0, 1), failure, /*ttl_seconds=*/1e-9);
  StaleLookupResult negative = cache.LookupStale(Key(0, 1), 3600.0);
  EXPECT_FALSE(negative.value.has_value());
  EXPECT_FALSE(negative.stale);

  // Past the stale window the entry reaps too.
  cache.Insert(Key(0, 2), {0.5, 10}, /*ttl_seconds=*/1e-9);
  StaleLookupResult ancient = cache.LookupStale(Key(0, 2), /*max_stale=*/1e-9);
  EXPECT_FALSE(ancient.value.has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Stats().expired, 2u);
}

TEST(ResultCacheTest, ConcurrentMixedWorkloadIsSafe) {
  ResultCache cache(256, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (NodeId i = 0; i < 2000; ++i) {
        const NodeId s = (i + static_cast<NodeId>(t)) % 97;
        cache.Insert(Key(s, s + 1), {static_cast<double>(s) / 97.0, 10});
        const auto hit = cache.Lookup(Key(s, s + 1));
        if (hit.has_value()) {
          EXPECT_DOUBLE_EQ(hit->reliability, static_cast<double>(s) / 97.0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 256u);
  EXPECT_EQ(cache.Stats().lookups(), 8u * 2000u);
}

}  // namespace
}  // namespace relcomp
