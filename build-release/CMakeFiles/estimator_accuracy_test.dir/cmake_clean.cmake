file(REMOVE_RECURSE
  "CMakeFiles/estimator_accuracy_test.dir/tests/estimator_accuracy_test.cc.o"
  "CMakeFiles/estimator_accuracy_test.dir/tests/estimator_accuracy_test.cc.o.d"
  "estimator_accuracy_test"
  "estimator_accuracy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
