# Empty dependencies file for estimator_accuracy_test.
# This may be replaced when dependencies are built.
