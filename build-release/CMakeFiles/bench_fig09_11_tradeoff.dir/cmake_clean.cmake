file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_11_tradeoff.dir/bench/bench_fig09_11_tradeoff.cc.o"
  "CMakeFiles/bench_fig09_11_tradeoff.dir/bench/bench_fig09_11_tradeoff.cc.o.d"
  "bench/bench_fig09_11_tradeoff"
  "bench/bench_fig09_11_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_11_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
