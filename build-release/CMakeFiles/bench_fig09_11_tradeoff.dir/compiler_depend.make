# Empty compiler generated dependencies file for bench_fig09_11_tradeoff.
# This may be replaced when dependencies are built.
