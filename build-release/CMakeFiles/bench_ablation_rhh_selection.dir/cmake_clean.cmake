file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rhh_selection.dir/bench/bench_ablation_rhh_selection.cc.o"
  "CMakeFiles/bench_ablation_rhh_selection.dir/bench/bench_ablation_rhh_selection.cc.o.d"
  "bench/bench_ablation_rhh_selection"
  "bench/bench_ablation_rhh_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rhh_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
