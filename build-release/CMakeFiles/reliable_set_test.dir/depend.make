# Empty dependencies file for reliable_set_test.
# This may be replaced when dependencies are built.
