file(REMOVE_RECURSE
  "CMakeFiles/reliable_set_test.dir/tests/reliable_set_test.cc.o"
  "CMakeFiles/reliable_set_test.dir/tests/reliable_set_test.cc.o.d"
  "reliable_set_test"
  "reliable_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
