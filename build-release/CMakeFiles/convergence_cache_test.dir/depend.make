# Empty dependencies file for convergence_cache_test.
# This may be replaced when dependencies are built.
