file(REMOVE_RECURSE
  "CMakeFiles/convergence_cache_test.dir/tests/convergence_cache_test.cc.o"
  "CMakeFiles/convergence_cache_test.dir/tests/convergence_cache_test.cc.o.d"
  "convergence_cache_test"
  "convergence_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
