# Empty dependencies file for bench_tab16_probtree_coupling.
# This may be replaced when dependencies are built.
