file(REMOVE_RECURSE
  "CMakeFiles/bench_tab16_probtree_coupling.dir/bench/bench_tab16_probtree_coupling.cc.o"
  "CMakeFiles/bench_tab16_probtree_coupling.dir/bench/bench_tab16_probtree_coupling.cc.o.d"
  "bench/bench_tab16_probtree_coupling"
  "bench/bench_tab16_probtree_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab16_probtree_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
