file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_threshold.dir/bench/bench_fig16_threshold.cc.o"
  "CMakeFiles/bench_fig16_threshold.dir/bench/bench_fig16_threshold.cc.o.d"
  "bench/bench_fig16_threshold"
  "bench/bench_fig16_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
