# Empty compiler generated dependencies file for bench_micro_estimators.
# This may be replaced when dependencies are built.
