file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_estimators.dir/bench/bench_micro_estimators.cc.o"
  "CMakeFiles/bench_micro_estimators.dir/bench/bench_micro_estimators.cc.o.d"
  "bench/bench_micro_estimators"
  "bench/bench_micro_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
