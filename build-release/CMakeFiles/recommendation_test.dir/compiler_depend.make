# Empty compiler generated dependencies file for recommendation_test.
# This may be replaced when dependencies are built.
