file(REMOVE_RECURSE
  "CMakeFiles/recommendation_test.dir/tests/recommendation_test.cc.o"
  "CMakeFiles/recommendation_test.dir/tests/recommendation_test.cc.o.d"
  "recommendation_test"
  "recommendation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommendation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
