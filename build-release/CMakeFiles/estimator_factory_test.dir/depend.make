# Empty dependencies file for estimator_factory_test.
# This may be replaced when dependencies are built.
