file(REMOVE_RECURSE
  "CMakeFiles/estimator_factory_test.dir/tests/estimator_factory_test.cc.o"
  "CMakeFiles/estimator_factory_test.dir/tests/estimator_factory_test.cc.o.d"
  "estimator_factory_test"
  "estimator_factory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
