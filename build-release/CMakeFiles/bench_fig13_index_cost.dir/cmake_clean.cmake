file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_index_cost.dir/bench/bench_fig13_index_cost.cc.o"
  "CMakeFiles/bench_fig13_index_cost.dir/bench/bench_fig13_index_cost.cc.o.d"
  "bench/bench_fig13_index_cost"
  "bench/bench_fig13_index_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_index_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
