# Empty compiler generated dependencies file for bench_fig13_index_cost.
# This may be replaced when dependencies are built.
