file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_stratum.dir/bench/bench_fig17_stratum.cc.o"
  "CMakeFiles/bench_fig17_stratum.dir/bench/bench_fig17_stratum.cc.o.d"
  "bench/bench_fig17_stratum"
  "bench/bench_fig17_stratum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_stratum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
