
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitvector.cc" "CMakeFiles/relcomp.dir/src/common/bitvector.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/common/bitvector.cc.o.d"
  "/root/repo/src/common/format.cc" "CMakeFiles/relcomp.dir/src/common/format.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/common/format.cc.o.d"
  "/root/repo/src/common/memory_tracker.cc" "CMakeFiles/relcomp.dir/src/common/memory_tracker.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/common/memory_tracker.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/relcomp.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/relcomp.dir/src/common/status.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/common/status.cc.o.d"
  "/root/repo/src/engine/engine_stats.cc" "CMakeFiles/relcomp.dir/src/engine/engine_stats.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/engine/engine_stats.cc.o.d"
  "/root/repo/src/engine/query_engine.cc" "CMakeFiles/relcomp.dir/src/engine/query_engine.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/engine/query_engine.cc.o.d"
  "/root/repo/src/engine/result_cache.cc" "CMakeFiles/relcomp.dir/src/engine/result_cache.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/engine/result_cache.cc.o.d"
  "/root/repo/src/engine/thread_pool.cc" "CMakeFiles/relcomp.dir/src/engine/thread_pool.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/engine/thread_pool.cc.o.d"
  "/root/repo/src/eval/convergence.cc" "CMakeFiles/relcomp.dir/src/eval/convergence.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/convergence.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "CMakeFiles/relcomp.dir/src/eval/experiment.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/relcomp.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/query_gen.cc" "CMakeFiles/relcomp.dir/src/eval/query_gen.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/query_gen.cc.o.d"
  "/root/repo/src/eval/recommendation.cc" "CMakeFiles/relcomp.dir/src/eval/recommendation.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/recommendation.cc.o.d"
  "/root/repo/src/eval/table.cc" "CMakeFiles/relcomp.dir/src/eval/table.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/eval/table.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "CMakeFiles/relcomp.dir/src/graph/datasets.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/datasets.cc.o.d"
  "/root/repo/src/graph/edge_prob.cc" "CMakeFiles/relcomp.dir/src/graph/edge_prob.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/edge_prob.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/relcomp.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "CMakeFiles/relcomp.dir/src/graph/graph_builder.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/relcomp.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/possible_world.cc" "CMakeFiles/relcomp.dir/src/graph/possible_world.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/possible_world.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "CMakeFiles/relcomp.dir/src/graph/subgraph.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/uncertain_graph.cc" "CMakeFiles/relcomp.dir/src/graph/uncertain_graph.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/graph/uncertain_graph.cc.o.d"
  "/root/repo/src/reliability/bfs_sharing.cc" "CMakeFiles/relcomp.dir/src/reliability/bfs_sharing.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/bfs_sharing.cc.o.d"
  "/root/repo/src/reliability/bounds.cc" "CMakeFiles/relcomp.dir/src/reliability/bounds.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/bounds.cc.o.d"
  "/root/repo/src/reliability/conditional.cc" "CMakeFiles/relcomp.dir/src/reliability/conditional.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/conditional.cc.o.d"
  "/root/repo/src/reliability/distance_constrained.cc" "CMakeFiles/relcomp.dir/src/reliability/distance_constrained.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/distance_constrained.cc.o.d"
  "/root/repo/src/reliability/estimator.cc" "CMakeFiles/relcomp.dir/src/reliability/estimator.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/estimator.cc.o.d"
  "/root/repo/src/reliability/estimator_factory.cc" "CMakeFiles/relcomp.dir/src/reliability/estimator_factory.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/estimator_factory.cc.o.d"
  "/root/repo/src/reliability/exact.cc" "CMakeFiles/relcomp.dir/src/reliability/exact.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/exact.cc.o.d"
  "/root/repo/src/reliability/lazy_propagation.cc" "CMakeFiles/relcomp.dir/src/reliability/lazy_propagation.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/lazy_propagation.cc.o.d"
  "/root/repo/src/reliability/mc_sampling.cc" "CMakeFiles/relcomp.dir/src/reliability/mc_sampling.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/mc_sampling.cc.o.d"
  "/root/repo/src/reliability/prob_tree.cc" "CMakeFiles/relcomp.dir/src/reliability/prob_tree.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/prob_tree.cc.o.d"
  "/root/repo/src/reliability/recursive_sampling.cc" "CMakeFiles/relcomp.dir/src/reliability/recursive_sampling.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/recursive_sampling.cc.o.d"
  "/root/repo/src/reliability/recursive_stratified.cc" "CMakeFiles/relcomp.dir/src/reliability/recursive_stratified.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/recursive_stratified.cc.o.d"
  "/root/repo/src/reliability/reliable_set.cc" "CMakeFiles/relcomp.dir/src/reliability/reliable_set.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/reliable_set.cc.o.d"
  "/root/repo/src/reliability/top_k.cc" "CMakeFiles/relcomp.dir/src/reliability/top_k.cc.o" "gcc" "CMakeFiles/relcomp.dir/src/reliability/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
