file(REMOVE_RECURSE
  "librelcomp.a"
)
