# Empty dependencies file for relcomp.
# This may be replaced when dependencies are built.
