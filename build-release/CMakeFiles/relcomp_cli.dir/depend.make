# Empty dependencies file for relcomp_cli.
# This may be replaced when dependencies are built.
