file(REMOVE_RECURSE
  "CMakeFiles/relcomp_cli.dir/examples/relcomp_cli.cpp.o"
  "CMakeFiles/relcomp_cli.dir/examples/relcomp_cli.cpp.o.d"
  "examples/relcomp_cli"
  "examples/relcomp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relcomp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
