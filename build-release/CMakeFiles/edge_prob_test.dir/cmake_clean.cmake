file(REMOVE_RECURSE
  "CMakeFiles/edge_prob_test.dir/tests/edge_prob_test.cc.o"
  "CMakeFiles/edge_prob_test.dir/tests/edge_prob_test.cc.o.d"
  "edge_prob_test"
  "edge_prob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_prob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
