# Empty dependencies file for edge_prob_test.
# This may be replaced when dependencies are built.
