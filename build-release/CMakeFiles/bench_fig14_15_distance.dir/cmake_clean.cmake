file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_distance.dir/bench/bench_fig14_15_distance.cc.o"
  "CMakeFiles/bench_fig14_15_distance.dir/bench/bench_fig14_15_distance.cc.o.d"
  "bench/bench_fig14_15_distance"
  "bench/bench_fig14_15_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
