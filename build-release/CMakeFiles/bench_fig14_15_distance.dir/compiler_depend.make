# Empty compiler generated dependencies file for bench_fig14_15_distance.
# This may be replaced when dependencies are built.
