file(REMOVE_RECURSE
  "CMakeFiles/influence_eval.dir/examples/influence_eval.cpp.o"
  "CMakeFiles/influence_eval.dir/examples/influence_eval.cpp.o.d"
  "examples/influence_eval"
  "examples/influence_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
