# Empty compiler generated dependencies file for influence_eval.
# This may be replaced when dependencies are built.
