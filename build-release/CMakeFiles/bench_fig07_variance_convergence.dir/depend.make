# Empty dependencies file for bench_fig07_variance_convergence.
# This may be replaced when dependencies are built.
