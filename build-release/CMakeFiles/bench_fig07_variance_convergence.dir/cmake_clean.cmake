file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_variance_convergence.dir/bench/bench_fig07_variance_convergence.cc.o"
  "CMakeFiles/bench_fig07_variance_convergence.dir/bench/bench_fig07_variance_convergence.cc.o.d"
  "bench/bench_fig07_variance_convergence"
  "bench/bench_fig07_variance_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_variance_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
