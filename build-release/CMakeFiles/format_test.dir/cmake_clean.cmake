file(REMOVE_RECURSE
  "CMakeFiles/format_test.dir/tests/format_test.cc.o"
  "CMakeFiles/format_test.dir/tests/format_test.cc.o.d"
  "format_test"
  "format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
