file(REMOVE_RECURSE
  "CMakeFiles/dataset_estimator_sweep_test.dir/tests/dataset_estimator_sweep_test.cc.o"
  "CMakeFiles/dataset_estimator_sweep_test.dir/tests/dataset_estimator_sweep_test.cc.o.d"
  "dataset_estimator_sweep_test"
  "dataset_estimator_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_estimator_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
