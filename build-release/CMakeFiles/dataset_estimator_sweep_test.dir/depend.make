# Empty dependencies file for dataset_estimator_sweep_test.
# This may be replaced when dependencies are built.
