# Empty dependencies file for ppi_search.
# This may be replaced when dependencies are built.
