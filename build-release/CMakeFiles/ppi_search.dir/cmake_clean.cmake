file(REMOVE_RECURSE
  "CMakeFiles/ppi_search.dir/examples/ppi_search.cpp.o"
  "CMakeFiles/ppi_search.dir/examples/ppi_search.cpp.o.d"
  "examples/ppi_search"
  "examples/ppi_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppi_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
