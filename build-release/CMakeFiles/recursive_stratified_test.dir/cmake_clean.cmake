file(REMOVE_RECURSE
  "CMakeFiles/recursive_stratified_test.dir/tests/recursive_stratified_test.cc.o"
  "CMakeFiles/recursive_stratified_test.dir/tests/recursive_stratified_test.cc.o.d"
  "recursive_stratified_test"
  "recursive_stratified_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_stratified_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
