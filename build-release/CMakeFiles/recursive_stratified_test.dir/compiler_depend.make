# Empty compiler generated dependencies file for recursive_stratified_test.
# This may be replaced when dependencies are built.
