file(REMOVE_RECURSE
  "CMakeFiles/distance_constrained_test.dir/tests/distance_constrained_test.cc.o"
  "CMakeFiles/distance_constrained_test.dir/tests/distance_constrained_test.cc.o.d"
  "distance_constrained_test"
  "distance_constrained_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_constrained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
