# Empty dependencies file for bench_tab09_14_runtime.
# This may be replaced when dependencies are built.
