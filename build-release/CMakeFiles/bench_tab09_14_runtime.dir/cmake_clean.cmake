file(REMOVE_RECURSE
  "CMakeFiles/bench_tab09_14_runtime.dir/bench/bench_tab09_14_runtime.cc.o"
  "CMakeFiles/bench_tab09_14_runtime.dir/bench/bench_tab09_14_runtime.cc.o.d"
  "bench/bench_tab09_14_runtime"
  "bench/bench_tab09_14_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab09_14_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
