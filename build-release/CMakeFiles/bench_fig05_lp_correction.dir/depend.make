# Empty dependencies file for bench_fig05_lp_correction.
# This may be replaced when dependencies are built.
