file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_lp_correction.dir/bench/bench_fig05_lp_correction.cc.o"
  "CMakeFiles/bench_fig05_lp_correction.dir/bench/bench_fig05_lp_correction.cc.o.d"
  "bench/bench_fig05_lp_correction"
  "bench/bench_fig05_lp_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_lp_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
