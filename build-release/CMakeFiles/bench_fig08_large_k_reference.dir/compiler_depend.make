# Empty compiler generated dependencies file for bench_fig08_large_k_reference.
# This may be replaced when dependencies are built.
