file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_large_k_reference.dir/bench/bench_fig08_large_k_reference.cc.o"
  "CMakeFiles/bench_fig08_large_k_reference.dir/bench/bench_fig08_large_k_reference.cc.o.d"
  "bench/bench_fig08_large_k_reference"
  "bench/bench_fig08_large_k_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_large_k_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
