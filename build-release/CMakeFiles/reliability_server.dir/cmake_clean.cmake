file(REMOVE_RECURSE
  "CMakeFiles/reliability_server.dir/examples/reliability_server.cpp.o"
  "CMakeFiles/reliability_server.dir/examples/reliability_server.cpp.o.d"
  "examples/reliability_server"
  "examples/reliability_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
