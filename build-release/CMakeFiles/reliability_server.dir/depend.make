# Empty dependencies file for reliability_server.
# This may be replaced when dependencies are built.
