# Empty dependencies file for mc_sampling_test.
# This may be replaced when dependencies are built.
