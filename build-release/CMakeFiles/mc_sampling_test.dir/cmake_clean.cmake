file(REMOVE_RECURSE
  "CMakeFiles/mc_sampling_test.dir/tests/mc_sampling_test.cc.o"
  "CMakeFiles/mc_sampling_test.dir/tests/mc_sampling_test.cc.o.d"
  "mc_sampling_test"
  "mc_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
