file(REMOVE_RECURSE
  "CMakeFiles/bench_tab17_summary.dir/bench/bench_tab17_summary.cc.o"
  "CMakeFiles/bench_tab17_summary.dir/bench/bench_tab17_summary.cc.o.d"
  "bench/bench_tab17_summary"
  "bench/bench_tab17_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab17_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
