# Empty compiler generated dependencies file for bench_tab17_summary.
# This may be replaced when dependencies are built.
