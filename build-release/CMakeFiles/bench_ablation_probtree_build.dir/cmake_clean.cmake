file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probtree_build.dir/bench/bench_ablation_probtree_build.cc.o"
  "CMakeFiles/bench_ablation_probtree_build.dir/bench/bench_ablation_probtree_build.cc.o.d"
  "bench/bench_ablation_probtree_build"
  "bench/bench_ablation_probtree_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probtree_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
