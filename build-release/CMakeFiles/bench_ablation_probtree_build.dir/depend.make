# Empty dependencies file for bench_ablation_probtree_build.
# This may be replaced when dependencies are built.
