file(REMOVE_RECURSE
  "CMakeFiles/bench_tab15_index_update.dir/bench/bench_tab15_index_update.cc.o"
  "CMakeFiles/bench_tab15_index_update.dir/bench/bench_tab15_index_update.cc.o.d"
  "bench/bench_tab15_index_update"
  "bench/bench_tab15_index_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab15_index_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
