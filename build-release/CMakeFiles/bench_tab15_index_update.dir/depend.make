# Empty dependencies file for bench_tab15_index_update.
# This may be replaced when dependencies are built.
