file(REMOVE_RECURSE
  "CMakeFiles/lazy_propagation_test.dir/tests/lazy_propagation_test.cc.o"
  "CMakeFiles/lazy_propagation_test.dir/tests/lazy_propagation_test.cc.o.d"
  "lazy_propagation_test"
  "lazy_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
