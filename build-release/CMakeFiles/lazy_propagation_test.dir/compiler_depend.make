# Empty compiler generated dependencies file for lazy_propagation_test.
# This may be replaced when dependencies are built.
