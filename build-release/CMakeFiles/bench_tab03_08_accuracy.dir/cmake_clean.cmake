file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_08_accuracy.dir/bench/bench_tab03_08_accuracy.cc.o"
  "CMakeFiles/bench_tab03_08_accuracy.dir/bench/bench_tab03_08_accuracy.cc.o.d"
  "bench/bench_tab03_08_accuracy"
  "bench/bench_tab03_08_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_08_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
