# Empty dependencies file for bench_tab03_08_accuracy.
# This may be replaced when dependencies are built.
