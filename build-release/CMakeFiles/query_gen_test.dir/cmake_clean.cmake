file(REMOVE_RECURSE
  "CMakeFiles/query_gen_test.dir/tests/query_gen_test.cc.o"
  "CMakeFiles/query_gen_test.dir/tests/query_gen_test.cc.o.d"
  "query_gen_test"
  "query_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
