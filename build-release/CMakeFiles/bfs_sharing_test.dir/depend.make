# Empty dependencies file for bfs_sharing_test.
# This may be replaced when dependencies are built.
