file(REMOVE_RECURSE
  "CMakeFiles/bfs_sharing_test.dir/tests/bfs_sharing_test.cc.o"
  "CMakeFiles/bfs_sharing_test.dir/tests/bfs_sharing_test.cc.o.d"
  "bfs_sharing_test"
  "bfs_sharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
