# Empty dependencies file for road_network.
# This may be replaced when dependencies are built.
