file(REMOVE_RECURSE
  "CMakeFiles/road_network.dir/examples/road_network.cpp.o"
  "CMakeFiles/road_network.dir/examples/road_network.cpp.o.d"
  "examples/road_network"
  "examples/road_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
