file(REMOVE_RECURSE
  "CMakeFiles/prob_tree_test.dir/tests/prob_tree_test.cc.o"
  "CMakeFiles/prob_tree_test.dir/tests/prob_tree_test.cc.o.d"
  "prob_tree_test"
  "prob_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
