# Empty compiler generated dependencies file for prob_tree_test.
# This may be replaced when dependencies are built.
