file(REMOVE_RECURSE
  "CMakeFiles/recursive_sampling_test.dir/tests/recursive_sampling_test.cc.o"
  "CMakeFiles/recursive_sampling_test.dir/tests/recursive_sampling_test.cc.o.d"
  "recursive_sampling_test"
  "recursive_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
