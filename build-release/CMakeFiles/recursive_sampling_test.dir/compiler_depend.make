# Empty compiler generated dependencies file for recursive_sampling_test.
# This may be replaced when dependencies are built.
