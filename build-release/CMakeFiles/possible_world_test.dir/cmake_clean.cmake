file(REMOVE_RECURSE
  "CMakeFiles/possible_world_test.dir/tests/possible_world_test.cc.o"
  "CMakeFiles/possible_world_test.dir/tests/possible_world_test.cc.o.d"
  "possible_world_test"
  "possible_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/possible_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
