# Empty compiler generated dependencies file for possible_world_test.
# This may be replaced when dependencies are built.
