# Empty compiler generated dependencies file for estimator_tournament.
# This may be replaced when dependencies are built.
