file(REMOVE_RECURSE
  "CMakeFiles/estimator_tournament.dir/examples/estimator_tournament.cpp.o"
  "CMakeFiles/estimator_tournament.dir/examples/estimator_tournament.cpp.o.d"
  "examples/estimator_tournament"
  "examples/estimator_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
