// Figures 14 & 15: sensitivity to the s-t shortest-path distance h on the
// BioMine analogue. Findings: (1) K at convergence is ~flat for h <= 6 and
// jumps for h = 8; (2) relative error is insensitive to h; (3) running time
// grows with h for MC/LP+/RHH (deeper BFS), stays flat for BFS Sharing, and
// grows only mildly for ProbTree and RSS.

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figures 14-15: sensitivity to s-t distance h in {2, 4, 6, 8}",
      "reliability decays with h; convergence K is stable until reliability "
      "collapses; ProbTree and RSS handle distant pairs best",
      config);
  ExperimentContext context(config);
  const DatasetId id = DatasetId::kBioMine;

  TextTable table({"h", "Estimator", "K@conv", "R_K@conv", "RE vs MC (%)",
                   "Time@conv (s)"});
  for (const uint32_t h : {2u, 4u, 6u, 8u}) {
    const auto queries_result = context.GetQueries(id, h);
    if (!queries_result.ok()) {
      std::printf("h=%u: no workload at this distance on this scale (%s)\n", h,
                  queries_result.status().ToString().c_str());
      continue;
    }
    const auto* queries = *queries_result;
    // Ground truth per h: MC at convergence on the same workload.
    std::vector<double> ground;
    for (const EstimatorKind kind : TheSixEstimators()) {
      Estimator* estimator =
          bench::Unwrap(context.GetEstimator(id, kind), "estimator");
      const ConvergenceReport report = bench::Unwrap(
          RunConvergence(*estimator, *queries, config.MakeConvergenceOptions()),
          "convergence");
      const KPoint& conv = report.FinalPoint();
      if (kind == EstimatorKind::kMonteCarlo) {
        ground = conv.per_pair_reliability;
      }
      table.AddRow({StrFormat("%u", h), EstimatorKindName(kind),
                    report.converged() ? StrFormat("%u", report.converged_k)
                                       : StrFormat(">%u", config.max_k),
                    bench::Fmt(conv.avg_reliability, "%.5f"),
                    bench::Fmt(RelativeError(conv.per_pair_reliability, ground) *
                                   100.0,
                               "%.2f"),
                    bench::Fmt(conv.avg_query_seconds, "%.6f")});
    }
  }
  bench::PrintTable(table, "fig14_15_distance");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
