// Tables 9-14: online running time per query at each estimator's convergence
// K, at the fixed K=1000, and per sample. Findings: RHH/RSS fastest at
// convergence (fewer samples needed); ProbTree/LP+ in the middle; BFS
// Sharing ~4x slower than MC (no early termination, cascading updates);
// per-sample cost is ~constant in K, i.e. total time is linear in K —
// contradicting [45]'s K-independence claim.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Tables 9-14: running time at convergence / at K=1000 / per sample",
      "recursive estimators are fastest at convergence; BFS Sharing is ~4x "
      "slower than MC; every method's time grows linearly with K",
      config);
  ExperimentContext context(config);
  const uint32_t fixed_k = 1000;

  for (const DatasetId id : AllDatasetIds()) {
    const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");
    TextTable table({"Estimator", "K@conv", "Time@conv (s)", "Time@1000 (s)",
                     "Per sample (ms)"});
    double mc_conv_time = 0.0;
    double bfs_conv_time = 0.0;
    for (const EstimatorKind kind : TheSixEstimators()) {
      const ConvergenceReport* report =
          bench::Unwrap(context.GetConvergence(id, kind), "convergence");
      const KPoint& conv = report->FinalPoint();
      Estimator* estimator =
          bench::Unwrap(context.GetEstimator(id, kind), "estimator");
      const KPoint at_1000 = bench::Unwrap(
          MeasureAtK(*estimator, *queries, fixed_k,
                     std::max<uint32_t>(2, config.repeats / 2),
                     config.seed ^ 0x77),
          "measure@1000");
      if (kind == EstimatorKind::kMonteCarlo) mc_conv_time = conv.avg_query_seconds;
      if (kind == EstimatorKind::kBfsSharing) bfs_conv_time = conv.avg_query_seconds;
      table.AddRow(
          {EstimatorKindName(kind),
           report->converged() ? StrFormat("%u", report->converged_k)
                               : StrFormat(">%u", config.max_k),
           bench::Fmt(conv.avg_query_seconds, "%.6f"),
           bench::Fmt(at_1000.avg_query_seconds, "%.6f"),
           bench::Fmt(conv.avg_query_seconds * 1e3 / conv.k, "%.6f")});
    }
    std::printf("--- %s ---\n", DatasetDisplayName(id));
    bench::PrintTable(table, std::string("tab09_14_") + DatasetName(id));
    if (mc_conv_time > 0.0) {
      std::printf("BFSSharing / MC time ratio at convergence: %.2fx "
                  "(paper: ~4x)\n\n",
                  bfs_conv_time / mc_conv_time);
    }
  }
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
