// Table 16: coupling the ProbTree index with the faster estimators (LP+,
// RHH, RSS) instead of plain MC. Paper's finding: the coupled variants
// improve running time by ~10-30% while preserving accuracy.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Table 16: ProbTree coupled with efficient estimators",
      "ProbTree+X runs ~10-30% faster than plain X at convergence",
      config);
  ExperimentContext context(config);

  const std::pair<EstimatorKind, EstimatorKind> pairs[] = {
      {EstimatorKind::kLazyPropagationPlus, EstimatorKind::kProbTreeLpPlus},
      {EstimatorKind::kRecursive, EstimatorKind::kProbTreeRhh},
      {EstimatorKind::kRecursiveStratified, EstimatorKind::kProbTreeRss},
  };

  TextTable table({"Dataset", "Method", "K@conv", "Time@conv (s)",
                   "Avg reliability", "Speedup vs plain"});
  for (const DatasetId id :
       {DatasetId::kLastFm, DatasetId::kAsTopology, DatasetId::kBioMine}) {
    for (const auto& [plain_kind, coupled_kind] : pairs) {
      double plain_time = 0.0;
      for (const EstimatorKind kind : {plain_kind, coupled_kind}) {
        const ConvergenceReport* report =
            bench::Unwrap(context.GetConvergence(id, kind), "convergence");
        const KPoint& conv = report->FinalPoint();
        if (kind == plain_kind) plain_time = conv.avg_query_seconds;
        const double speedup =
            kind == plain_kind ? 1.0 : plain_time / conv.avg_query_seconds;
        table.AddRow(
            {DatasetDisplayName(id), EstimatorKindName(kind),
             report->converged() ? StrFormat("%u", report->converged_k)
                                 : StrFormat(">%u", config.max_k),
             bench::Fmt(conv.avg_query_seconds, "%.6f"),
             bench::Fmt(conv.avg_reliability),
             kind == plain_kind ? std::string("baseline")
                                : StrFormat("%.2fx", speedup)});
      }
    }
  }
  bench::PrintTable(table, "tab16_probtree_coupling");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
