// Figure 8: average reliability returned by each estimator vs K on the
// BioMine analogue, compared against MC with a very large K (the paper uses
// K = 10000). Finding: the reliability at variance convergence is already
// within noise of the large-K reference.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 8: reliability vs MC at very large K (BioMine analogue)",
      "estimates at variance convergence match MC at K=10000",
      config);
  ExperimentContext context(config);
  const DatasetId id = DatasetId::kBioMine;

  // Large-K MC reference (single repeat per pair: the line in the figure).
  Estimator* mc = bench::Unwrap(context.GetEstimator(id, EstimatorKind::kMonteCarlo),
                                "estimator");
  const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");
  const uint32_t large_k = 10000;
  const KPoint reference = bench::Unwrap(
      MeasureAtK(*mc, *queries, large_k, /*repeats=*/2, config.seed),
      "large-K reference");
  std::printf("MC reference at K=%u: avg reliability = %.4f\n\n", large_k,
              reference.avg_reliability);

  TextTable table({"Estimator", "K", "R_K", "delta vs MC@10000", "converged"});
  for (const EstimatorKind kind : TheSixEstimators()) {
    const ConvergenceReport* report =
        bench::Unwrap(context.GetConvergence(id, kind), "convergence");
    for (const KPoint& point : report->points) {
      const bool conv = report->converged() && point.k == report->converged_k;
      table.AddRow({EstimatorKindName(kind), StrFormat("%u", point.k),
                    bench::Fmt(point.avg_reliability),
                    StrFormat("%+.4f", point.avg_reliability -
                                           reference.avg_reliability),
                    conv ? "<== conv" : ""});
    }
  }
  bench::PrintTable(table, "fig08_large_k_reference");
  std::printf("Expected shape: every estimator's converged row lands within\n"
              "sampling noise of the MC@10000 reference line.\n");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
