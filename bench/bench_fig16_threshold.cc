// Figure 16: sensitivity of RHH and RSS to the sample-size threshold that
// triggers the non-recursive base case, at fixed K=1000 on the BioMine
// analogue. Findings: large thresholds (~100) degenerate both methods into
// plain MC (variance rises to MC's); below ~5 the gains flatten. The paper
// adopts threshold = 5.

#include "bench_util.h"
#include "reliability/mc_sampling.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 16: sensitivity to the recursion threshold (K=1000)",
      "variance rises toward MC's as the threshold grows; threshold=5 is the "
      "sweet spot for both RHH and RSS",
      config);
  ExperimentContext context(config);
  const DatasetId id = DatasetId::kBioMine;
  const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");
  const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");
  const uint32_t k = 1000;

  // MC reference lines (variance and time at the same K).
  MonteCarloEstimator mc(dataset->graph);
  const KPoint mc_point = bench::Unwrap(
      MeasureAtK(mc, *queries, k, config.repeats, config.seed), "mc reference");
  std::printf("MC reference at K=%u: variance=%.3e, time=%.6f s\n\n", k,
              mc_point.avg_variance, mc_point.avg_query_seconds);

  TextTable table({"Threshold", "Method", "Variance (x1e-4)", "Time (s)",
                   "Variance / MC"});
  for (const uint32_t threshold : {2u, 5u, 10u, 20u, 50u, 100u}) {
    {
      RecursiveSamplingOptions options;
      options.threshold = threshold;
      RecursiveEstimator rhh(dataset->graph, options);
      const KPoint point = bench::Unwrap(
          MeasureAtK(rhh, *queries, k, config.repeats, config.seed ^ threshold),
          "rhh");
      table.AddRow({StrFormat("%u", threshold), "RHH",
                    bench::Fmt(point.avg_variance * 1e4, "%.3f"),
                    bench::Fmt(point.avg_query_seconds, "%.6f"),
                    bench::Fmt(point.avg_variance /
                                   std::max(mc_point.avg_variance, 1e-300),
                               "%.2f")});
    }
    {
      RssOptions options;
      options.threshold = threshold;
      RecursiveStratifiedEstimator rss(dataset->graph, options);
      const KPoint point = bench::Unwrap(
          MeasureAtK(rss, *queries, k, config.repeats, config.seed ^ (threshold * 3)),
          "rss");
      table.AddRow({StrFormat("%u", threshold), "RSS",
                    bench::Fmt(point.avg_variance * 1e4, "%.3f"),
                    bench::Fmt(point.avg_query_seconds, "%.6f"),
                    bench::Fmt(point.avg_variance /
                                   std::max(mc_point.avg_variance, 1e-300),
                               "%.2f")});
    }
  }
  bench::PrintTable(table, "fig16_threshold");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
