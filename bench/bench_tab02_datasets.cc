// Table 2: properties of the datasets. Prints the synthetic analogues next
// to the paper's reported statistics so the substitution quality is visible.

#include "bench_util.h"
#include "graph/datasets.h"

namespace relcomp {
namespace {

struct PaperRow {
  DatasetId id;
  const char* nodes;
  const char* edges;
  const char* prob;
};

constexpr PaperRow kPaper[] = {
    {DatasetId::kLastFm, "6899", "23696", "0.29 +/- 0.25"},
    {DatasetId::kNetHept, "15233", "62774", "0.04 +/- 0.04"},
    {DatasetId::kAsTopology, "45535", "172294", "0.23 +/- 0.20"},
    {DatasetId::kDblp02, "1291298", "7123632", "0.33 +/- 0.18"},
    {DatasetId::kDblp005, "1291298", "7123632", "0.11 +/- 0.09"},
    {DatasetId::kBioMine, "1045414", "6742939", "0.27 +/- 0.21"},
};

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader("Table 2: Properties of datasets (synthetic analogues)",
                     "six uncertain graphs spanning social, co-authorship, "
                     "internet, and biological domains with distinct "
                     "probability profiles",
                     config);

  TextTable table({"Dataset", "#Nodes", "#Edges", "Edge Prob (mean +/- sd)",
                   "Quartiles", "Paper #Nodes", "Paper #Edges", "Paper Prob"});
  for (const PaperRow& row : kPaper) {
    const Dataset d =
        bench::Unwrap(MakeDataset(row.id, config.scale, config.seed), "dataset");
    const EdgeProbStats s = d.graph.ProbStats();
    table.AddRow({DatasetDisplayName(row.id), StrFormat("%zu", d.graph.num_nodes()),
                  StrFormat("%zu", d.graph.num_edges()),
                  StrFormat("%.2f +/- %.2f", s.mean, s.stddev),
                  StrFormat("{%.3f, %.3f, %.3f}", s.q25, s.q50, s.q75),
                  row.nodes, row.edges, row.prob});
  }
  bench::PrintTable(table, "tab02_datasets");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
