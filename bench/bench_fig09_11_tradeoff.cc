// Figures 9, 10, 11: the trade-off among relative error, running time, and
// memory usage vs the sample size K, on the LastFM, AS Topology, and BioMine
// analogues. Findings: relative error flattens at convergence; running time
// grows ~linearly in K for every estimator; memory is mostly K-insensitive
// (BFS Sharing and the recursive methods grow mildly).

#include "bench_util.h"
#include "eval/metrics.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figures 9-11: relative error / running time / memory vs K",
      "error converges while time keeps growing linearly in K, so sampling "
      "past convergence only burns time",
      config);
  ExperimentContext context(config);

  TextTable table({"Dataset", "Estimator", "K", "RelErr (%)", "Query time (s)",
                   "Memory (MB)", "converged"});
  for (const DatasetId id :
       {DatasetId::kLastFm, DatasetId::kAsTopology, DatasetId::kBioMine}) {
    const std::vector<double>* ground =
        bench::Unwrap(context.GetGroundTruth(id), "ground truth");
    const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");
    for (const EstimatorKind kind : TheSixEstimators()) {
      const ConvergenceReport* report =
          bench::Unwrap(context.GetConvergence(id, kind), "convergence");
      Estimator* estimator =
          bench::Unwrap(context.GetEstimator(id, kind), "estimator");
      for (const KPoint& point : report->points) {
        const double re = RelativeError(point.per_pair_reliability, *ground);
        const double memory_mb =
            static_cast<double>(point.peak_memory_bytes +
                                estimator->IndexMemoryBytes() +
                                dataset->graph.MemoryBytes()) /
            (1024.0 * 1024.0);
        const bool conv = report->converged() && point.k == report->converged_k;
        table.AddRow({DatasetDisplayName(id), EstimatorKindName(kind),
                      StrFormat("%u", point.k), bench::Fmt(re * 100.0, "%.2f"),
                      bench::Fmt(point.avg_query_seconds, "%.6f"),
                      bench::Fmt(memory_mb, "%.2f"), conv ? "<== conv" : ""});
      }
    }
  }
  bench::PrintTable(table, "fig09_11_tradeoff");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
