// Tables 3-8: relative error of every estimator at its own convergence K and
// at the fixed K=1000 used by earlier papers, plus the pairwise deviation D.
// Findings: at convergence all six estimators are comparably accurate
// (< ~2% in the paper, no common winner); fixing K=1000 is unfair to
// whichever estimators have not converged yet, visible as a larger D.

#include "bench_util.h"
#include "eval/metrics.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Tables 3-8: relative error at convergence vs at fixed K=1000",
      "comparing at one fixed K is unfair; at each estimator's own "
      "convergence the errors are uniformly low",
      config);
  ExperimentContext context(config);
  const uint32_t fixed_k = 1000;

  for (const DatasetId id : AllDatasetIds()) {
    const std::vector<double>* ground =
        bench::Unwrap(context.GetGroundTruth(id), "ground truth");
    const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");

    TextTable table({"Estimator", "K@conv", "R_K@conv", "RE@conv (%)",
                     "R_K@1000", "RE@1000 (%)"});
    std::vector<double> re_conv;
    std::vector<double> re_fixed;
    for (const EstimatorKind kind : TheSixEstimators()) {
      const ConvergenceReport* report =
          bench::Unwrap(context.GetConvergence(id, kind), "convergence");
      const KPoint& conv = report->FinalPoint();
      Estimator* estimator =
          bench::Unwrap(context.GetEstimator(id, kind), "estimator");
      const KPoint at_1000 = bench::Unwrap(
          MeasureAtK(*estimator, *queries, fixed_k, config.repeats,
                     config.seed ^ 0xF1),
          "measure@1000");
      const double re_c = RelativeError(conv.per_pair_reliability, *ground);
      const double re_f = RelativeError(at_1000.per_pair_reliability, *ground);
      re_conv.push_back(re_c);
      re_fixed.push_back(re_f);
      table.AddRow({EstimatorKindName(kind),
                    report->converged() ? StrFormat("%u", report->converged_k)
                                        : StrFormat(">%u", config.max_k),
                    bench::Fmt(conv.avg_reliability), bench::Fmt(re_c * 100, "%.2f"),
                    bench::Fmt(at_1000.avg_reliability),
                    bench::Fmt(re_f * 100, "%.2f")});
    }
    table.AddRow({"Pairwise deviation D", "", "",
                  bench::Fmt(PairwiseDeviation(re_conv) * 100, "%.2f"), "",
                  bench::Fmt(PairwiseDeviation(re_fixed) * 100, "%.2f")});
    std::printf("--- %s ---\n", DatasetDisplayName(id));
    bench::PrintTable(table, std::string("tab03_08_") + DatasetName(id));
  }
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
