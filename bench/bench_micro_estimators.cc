// Micro-benchmarks (google-benchmark): per-query cost of each estimator at
// fixed K on the LastFM analogue, plus the core primitives (possible-world
// sampling, BFS Sharing bit-vector propagation, ProbTree query-graph
// extraction). Complements the table benches with tight per-op numbers.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/possible_world.h"
#include "reliability/estimator_factory.h"

namespace relcomp {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<ReliabilityQuery> queries;

  static const Fixture& Get() {
    static const Fixture* fixture = [] {
      auto* f = new Fixture();
      f->dataset = MakeDataset(DatasetId::kLastFm, Scale::kTiny, 7).MoveValue();
      QueryGenOptions options;
      options.num_pairs = 8;
      options.seed = 11;
      f->queries = GenerateQueries(f->dataset.graph, options).MoveValue();
      return f;
    }();
    return *fixture;
  }
};

void BM_Estimator(benchmark::State& state, EstimatorKind kind) {
  const Fixture& fixture = Fixture::Get();
  FactoryOptions factory;
  factory.bfs_sharing.index_samples = 2048;
  auto estimator = MakeEstimator(kind, fixture.dataset.graph, factory);
  if (!estimator.ok()) {
    state.SkipWithError(estimator.status().ToString().c_str());
    return;
  }
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  size_t qi = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    EstimateOptions opts;
    opts.num_samples = k;
    opts.seed = ++seed;
    const auto result =
        (*estimator)->Estimate(fixture.queries[qi % fixture.queries.size()], opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->reliability);
    ++qi;
  }
  state.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * k, benchmark::Counter::kIsRate);
}

BENCHMARK_CAPTURE(BM_Estimator, MC, EstimatorKind::kMonteCarlo)
    ->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_Estimator, BFSSharing, EstimatorKind::kBfsSharing)
    ->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_Estimator, ProbTree, EstimatorKind::kProbTree)
    ->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_Estimator, LPplus, EstimatorKind::kLazyPropagationPlus)
    ->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_Estimator, RHH, EstimatorKind::kRecursive)
    ->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_Estimator, RSS, EstimatorKind::kRecursiveStratified)
    ->Arg(250)->Arg(1000);

void BM_SampleWorld(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleWorld(fixture.dataset.graph, rng));
  }
  state.counters["edges_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * fixture.dataset.graph.num_edges()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampleWorld);

void BM_HopDistances(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HopDistances(fixture.dataset.graph, s));
    s = (s + 1) % fixture.dataset.graph.num_nodes();
  }
}
BENCHMARK(BM_HopDistances);

}  // namespace
}  // namespace relcomp

BENCHMARK_MAIN();
