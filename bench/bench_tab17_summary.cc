// Table 17 + Figure 18: the recommendation summary. Prints the paper's star
// ratings, walks the decision tree for the four scenario corners, and backs
// the ratings with a quick measured ranking on the LastFM analogue.

#include <algorithm>

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/recommendation.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Table 17 / Figure 18: summary and recommendation",
      "no single winner; ProbTree offers the best overall trade-off and is "
      "the paper's recommendation",
      config);

  std::printf("Paper's Table 17 ratings:\n%s\n", RatingsTable().c_str());

  std::printf("Figure 18 decision-tree walks:\n");
  for (const bool memory_constrained : {true, false}) {
    for (const bool need_low_variance : {false, true}) {
      ScenarioConstraints constraints;
      constraints.memory_constrained = memory_constrained;
      constraints.need_low_variance = need_low_variance;
      constraints.need_fast_queries = true;
      const Recommendation rec = RecommendEstimator(constraints);
      std::string names;
      for (EstimatorKind kind : rec.estimators) {
        if (!names.empty()) names += ", ";
        names += EstimatorKindName(kind);
      }
      std::printf("  memory %-7s variance %-8s => [%s]\n      %s\n",
                  memory_constrained ? "tight," : "ample,",
                  need_low_variance ? "critical" : "relaxed", names.c_str(),
                  rec.explanation.c_str());
    }
  }

  // Measured backing: rank the six on LastFM by time/variance/memory.
  ExperimentContext context(config);
  const DatasetId id = DatasetId::kLastFm;
  TextTable table({"Estimator", "K@conv", "Time@conv (s)", "Variance (x1e-4)",
                   "Memory total (MB)"});
  const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");
  for (const EstimatorKind kind : TheSixEstimators()) {
    const ConvergenceReport* report =
        bench::Unwrap(context.GetConvergence(id, kind), "convergence");
    Estimator* estimator =
        bench::Unwrap(context.GetEstimator(id, kind), "estimator");
    const KPoint& conv = report->FinalPoint();
    const double total_mb =
        static_cast<double>(conv.peak_memory_bytes +
                            estimator->IndexMemoryBytes() +
                            dataset->graph.MemoryBytes()) /
        1048576.0;
    table.AddRow({EstimatorKindName(kind),
                  report->converged() ? StrFormat("%u", report->converged_k)
                                      : StrFormat(">%u", config.max_k),
                  bench::Fmt(conv.avg_query_seconds, "%.6f"),
                  bench::Fmt(conv.avg_variance * 1e4, "%.3f"),
                  bench::Fmt(total_mb, "%.2f")});
  }
  std::printf("\nMeasured backing (LastFM analogue):\n");
  bench::PrintTable(table, "tab17_summary");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
