// Ablation (Section 2.4): RHH's next-edge selection strategy. Jin et al.
// [20] found depth-first expansion experimentally optimal, and the paper
// adopts it ("we also find that this strategy works well in our
// experiments"). This bench compares DFS against breadth-first and uniform
// random selection on variance and running time at fixed K.

#include "bench_util.h"
#include "reliability/recursive_sampling.h"

namespace relcomp {
namespace {

const char* StrategyName(EdgeSelectionStrategy strategy) {
  switch (strategy) {
    case EdgeSelectionStrategy::kDfs:
      return "DFS (paper)";
    case EdgeSelectionStrategy::kBfs:
      return "BFS";
    case EdgeSelectionStrategy::kRandom:
      return "random";
  }
  return "?";
}

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Ablation: RHH next-edge selection strategy (K=1000)",
      "DFS expansion reaches s-t path / cut terminations soonest, giving the "
      "fastest and lowest-variance recursion ([20]'s finding the paper "
      "adopts)",
      config);
  ExperimentContext context(config);

  TextTable table({"Dataset", "Strategy", "Reliability", "Variance (x1e-4)",
                   "Time (s)"});
  for (const DatasetId id :
       {DatasetId::kLastFm, DatasetId::kDblp02, DatasetId::kBioMine}) {
    const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");
    const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");
    for (const EdgeSelectionStrategy strategy :
         {EdgeSelectionStrategy::kDfs, EdgeSelectionStrategy::kBfs,
          EdgeSelectionStrategy::kRandom}) {
      RecursiveSamplingOptions options;
      options.selection = strategy;
      RecursiveEstimator rhh(dataset->graph, options);
      const KPoint point = bench::Unwrap(
          MeasureAtK(rhh, *queries, 1000, config.repeats,
                     config.seed ^ static_cast<uint64_t>(strategy)),
          "measure");
      table.AddRow({DatasetDisplayName(id), StrategyName(strategy),
                    bench::Fmt(point.avg_reliability),
                    bench::Fmt(point.avg_variance * 1e4, "%.3f"),
                    bench::Fmt(point.avg_query_seconds, "%.6f")});
    }
  }
  bench::PrintTable(table, "ablation_rhh_selection");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
