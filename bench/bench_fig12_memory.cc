// Figure 12: online memory usage per estimator per dataset at convergence.
// Paper's ordering: MC < LP+ < ProbTree < BFS Sharing < RHH ~= RSS.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 12: online memory usage at convergence",
      "increasing memory order: MC < LP+ < ProbTree < BFSSharing < RHH ~ RSS",
      config);
  ExperimentContext context(config);

  TextTable table({"Dataset", "Estimator", "Graph (MB)", "Index (MB)",
                   "Working peak (MB)", "Total (MB)"});
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");
    const double graph_mb =
        static_cast<double>(dataset->graph.MemoryBytes()) / (1024.0 * 1024.0);
    for (const EstimatorKind kind : TheSixEstimators()) {
      const ConvergenceReport* report =
          bench::Unwrap(context.GetConvergence(id, kind), "convergence");
      Estimator* estimator =
          bench::Unwrap(context.GetEstimator(id, kind), "estimator");
      const KPoint& conv = report->FinalPoint();
      const double index_mb =
          static_cast<double>(estimator->IndexMemoryBytes()) / (1024.0 * 1024.0);
      const double work_mb =
          static_cast<double>(conv.peak_memory_bytes) / (1024.0 * 1024.0);
      table.AddRow({DatasetDisplayName(id), EstimatorKindName(kind),
                    bench::Fmt(graph_mb, "%.2f"), bench::Fmt(index_mb, "%.2f"),
                    bench::Fmt(work_mb, "%.2f"),
                    bench::Fmt(graph_mb + index_mb + work_mb, "%.2f")});
    }
  }
  bench::PrintTable(table, "fig12_memory");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
