// Table 15: additional per-query cost of re-sampling the BFS Sharing index
// between successive queries (required to keep answers independent). The
// paper runs 1000 successive queries; the count scales with RELCOMP_PAIRS.

#include "bench_util.h"
#include "common/timer.h"
#include "eval/query_gen.h"
#include "reliability/bfs_sharing.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Table 15: BFS Sharing index update cost per successive query",
      "unlike ProbTree, the BFS Sharing index must be re-sampled before every "
      "query; on large graphs this adds seconds per query",
      config);
  const uint32_t num_queries = std::max<uint32_t>(20, config.num_pairs * 2);

  TextTable table({"Dataset", "#Queries", "Update cost per query (s)",
                   "Query time per query (s)"});
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset dataset =
        bench::Unwrap(MakeDataset(id, config.scale, config.seed), "dataset");
    QueryGenOptions qopts;
    qopts.num_pairs = num_queries;
    qopts.seed = config.seed;
    const std::vector<ReliabilityQuery> queries =
        bench::Unwrap(GenerateQueries(dataset.graph, qopts), "queries");

    BfsSharingOptions options;
    options.index_samples = 1500;
    auto estimator = bench::Unwrap(
        BfsSharingEstimator::Create(dataset.graph, options, config.seed),
        "bfs sharing");

    double update_seconds = 0.0;
    double query_seconds = 0.0;
    size_t runs = 0;
    for (const ReliabilityQuery& q : queries) {
      Timer update_timer;
      bench::Check(estimator->PrepareForNextQuery(config.seed + runs), "update");
      update_seconds += update_timer.ElapsedSeconds();
      EstimateOptions opts;
      opts.num_samples = 1000;
      opts.seed = config.seed * 13 + runs;
      const EstimateResult result =
          bench::Unwrap(estimator->Estimate(q, opts), "estimate");
      query_seconds += result.seconds;
      ++runs;
    }
    table.AddRow({DatasetDisplayName(id), StrFormat("%zu", runs),
                  bench::Fmt(update_seconds / runs, "%.5f"),
                  bench::Fmt(query_seconds / runs, "%.5f")});
  }
  bench::PrintTable(table, "tab15_index_update");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
