#pragma once

// Shared boilerplate for the per-table / per-figure benchmark binaries.
//
// Every binary prints the experiment id, the paper's reported shape, and the
// measured table, honoring the RELCOMP_* environment knobs (see
// BenchConfig). Exact magnitudes differ from the paper (synthetic analogue
// datasets, laptop scale); EXPERIMENTS.md records the shape comparison.

#include <cstdio>
#include <string>

#include "common/format.h"
#include "eval/experiment.h"
#include "eval/table.h"

namespace relcomp::bench {

inline void PrintHeader(const char* experiment, const char* claim,
                        const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper's finding: %s\n", claim);
  std::printf("Config: %s\n", config.Describe().c_str());
  std::printf("==============================================================\n");
}

inline void PrintTable(const TextTable& table, const std::string& csv_name) {
  std::printf("%s\n", table.ToString().c_str());
  const Status csv = MaybeWriteCsv(table, csv_name);
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: CSV export failed: %s\n",
                 csv.ToString().c_str());
  }
}

/// Abort-on-error helper for bench drivers (benches are executables; a
/// failed precondition should fail loudly, not limp on).
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return result.MoveValue();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

inline std::string Fmt(double v, const char* fmt = "%.4f") {
  return StrFormat(fmt, v);
}

}  // namespace relcomp::bench
