// Figure 5: reliability estimated by MC, the original Lazy Propagation (LP),
// and the corrected LP+ at convergence on the DBLP and BioMine analogues.
// The paper's finding: LP substantially over-estimates; LP+ tracks MC.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 5: LP vs LP+ vs MC reliability at convergence",
      "the original LP re-arm (X' + c_v) over-estimates reliability; the "
      "corrected LP+ (X' + c_v + 1) matches MC",
      config);
  ExperimentContext context(config);

  TextTable table(
      {"Dataset", "Estimator", "K@conv", "Avg reliability", "vs MC"});
  for (const DatasetId id : {DatasetId::kDblp02, DatasetId::kBioMine}) {
    double mc_reliability = 0.0;
    for (const EstimatorKind kind :
         {EstimatorKind::kMonteCarlo, EstimatorKind::kLazyPropagationPlus,
          EstimatorKind::kLazyPropagation}) {
      const ConvergenceReport* report = bench::Unwrap(
          context.GetConvergence(id, kind), "convergence");
      const KPoint& point = report->FinalPoint();
      if (kind == EstimatorKind::kMonteCarlo) {
        mc_reliability = point.avg_reliability;
      }
      const double delta = point.avg_reliability - mc_reliability;
      table.AddRow({DatasetDisplayName(id), EstimatorKindName(kind),
                    StrFormat("%u", report->converged() ? report->converged_k
                                                        : point.k),
                    bench::Fmt(point.avg_reliability),
                    StrFormat("%+.4f", delta)});
    }
  }
  bench::PrintTable(table, "fig05_lp_correction");
  std::printf(
      "Expected shape: LP rows sit clearly above their MC rows; LP+ rows are\n"
      "within sampling noise of MC (paper Figure 5).\n");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
