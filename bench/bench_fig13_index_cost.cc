// Figure 13 (a-c): offline index cost for BFS Sharing (L=1500 bit-vectors)
// vs ProbTree (FWD, w=2): build time, index size, load time. Findings: BFS
// Sharing builds faster but its index grows with L and loads slower;
// ProbTree's index is K-independent and cheaper to load.

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "common/timer.h"
#include "reliability/bfs_sharing.h"
#include "reliability/prob_tree.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 13: index building time / size / loading time",
      "BFS Sharing index is ~linear in L and bigger/slower to load; "
      "ProbTree's is K-independent and comparable to the graph size",
      config);

  const auto tmp = std::filesystem::temp_directory_path();
  TextTable table({"Dataset", "Index", "Build (s)", "Size (MB)", "Load (s)"});
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset dataset =
        bench::Unwrap(MakeDataset(id, config.scale, config.seed), "dataset");

    // BFS Sharing with the paper's L=1500 safe bound.
    BfsSharingOptions bfs_options;
    bfs_options.index_samples = 1500;
    auto bfs = bench::Unwrap(
        BfsSharingEstimator::Create(dataset.graph, bfs_options, config.seed),
        "bfs sharing build");
    const std::string bfs_path = (tmp / "relcomp_bench_bfs.idx").string();
    bench::Check(bfs->SaveToFile(bfs_path), "bfs index save");
    Timer bfs_load_timer;
    auto bfs_loaded = bench::Unwrap(
        BfsSharingEstimator::LoadFromFile(dataset.graph, bfs_path), "bfs load");
    const double bfs_load = bfs_load_timer.ElapsedSeconds();
    table.AddRow({DatasetDisplayName(id), "BFSSharing (L=1500)",
                  bench::Fmt(bfs->index_build_seconds(), "%.4f"),
                  bench::Fmt(static_cast<double>(bfs->IndexMemoryBytes()) / 1048576.0,
                             "%.2f"),
                  bench::Fmt(bfs_load, "%.4f")});

    // ProbTree FWD (w=2).
    auto index = bench::Unwrap(ProbTreeIndex::Build(dataset.graph, {}),
                               "probtree build");
    const std::string pt_path = (tmp / "relcomp_bench_pt.idx").string();
    bench::Check(index.SaveToFile(pt_path), "probtree save");
    Timer pt_load_timer;
    auto pt_loaded = bench::Unwrap(ProbTreeIndex::LoadFromFile(pt_path),
                                   "probtree load");
    const double pt_load = pt_load_timer.ElapsedSeconds();
    table.AddRow({DatasetDisplayName(id), "ProbTree (w=2)",
                  bench::Fmt(index.stats().build_seconds, "%.4f"),
                  bench::Fmt(static_cast<double>(index.MemoryBytes()) / 1048576.0,
                             "%.2f"),
                  bench::Fmt(pt_load, "%.4f")});

    std::filesystem::remove(bfs_path);
    std::filesystem::remove(pt_path);
    (void)bfs_loaded;
    (void)pt_loaded;
  }
  bench::PrintTable(table, "fig13_index_cost");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
