// Ablation (Section 2.7, "Our adaptation in complexity"): ProbTree index
// construction with the paper's reliability-only O(w^2) pairwise aggregation
// vs the original [32] O(w^2 d) distance-distribution precompute. The paper
// reports 4062 s -> 2482 s on BioMine; the same build-time and index-size
// gap must appear here at any scale.

#include "bench_util.h"
#include "reliability/prob_tree.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Ablation: ProbTree build cost, reliability-only vs distance "
      "distributions",
      "storing only edge probabilities cuts per-bag precomputation from "
      "O(w^2 d) to O(w^2) (paper: 4062 s -> 2482 s on BioMine)",
      config);

  TextTable table({"Dataset", "Mode", "Build (s)", "Index (MB)", "#Bags",
                   "Speedup"});
  for (const DatasetId id : AllDatasetIds()) {
    const Dataset dataset =
        bench::Unwrap(MakeDataset(id, config.scale, config.seed), "dataset");

    ProbTreeOptions original;
    original.precompute_distance_distributions = true;
    const ProbTreeIndex original_index =
        bench::Unwrap(ProbTreeIndex::Build(dataset.graph, original),
                      "original build");

    ProbTreeOptions adapted;  // the paper's reliability-only mode
    const ProbTreeIndex adapted_index = bench::Unwrap(
        ProbTreeIndex::Build(dataset.graph, adapted), "adapted build");

    const double t_original = original_index.stats().build_seconds;
    const double t_adapted = adapted_index.stats().build_seconds;
    table.AddRow({DatasetDisplayName(id), "original [32] (O(w^2 d))",
                  bench::Fmt(t_original, "%.4f"),
                  bench::Fmt(static_cast<double>(original_index.MemoryBytes()) /
                                 1048576.0,
                             "%.2f"),
                  StrFormat("%zu", original_index.num_bags()), "baseline"});
    table.AddRow({DatasetDisplayName(id), "paper adaptation (O(w^2))",
                  bench::Fmt(t_adapted, "%.4f"),
                  bench::Fmt(static_cast<double>(adapted_index.MemoryBytes()) /
                                 1048576.0,
                             "%.2f"),
                  StrFormat("%zu", adapted_index.num_bags()),
                  StrFormat("%.2fx", t_original / std::max(t_adapted, 1e-9))});
  }
  bench::PrintTable(table, "ablation_probtree_build");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
