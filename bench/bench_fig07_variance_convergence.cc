// Figure 7 (a-f): estimator variance / index-of-dispersion rho_K vs K for
// all six estimators on all six datasets, with the K at convergence.
// Paper's findings: (1) the four MC-based estimators share one variance
// curve; (2) RHH/RSS sit clearly below and converge with ~500 fewer samples;
// (3) no single K fits all estimators and datasets.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 7: estimator variance and convergence (rho_K = V_K / R_K)",
      "recursive estimators (RHH, RSS) have lower variance and converge "
      "earlier than the MC-based four (MC, BFSSharing, ProbTree, LP+)",
      config);
  ExperimentContext context(config);

  TextTable table({"Dataset", "Estimator", "K", "V_K (x1e-3)", "R_K",
                   "rho_K (x1e-3)", "converged"});
  TextTable summary({"Dataset", "Estimator", "K@convergence"});
  for (const DatasetId id : AllDatasetIds()) {
    for (const EstimatorKind kind : TheSixEstimators()) {
      const ConvergenceReport* report =
          bench::Unwrap(context.GetConvergence(id, kind), "convergence");
      for (const KPoint& point : report->points) {
        const bool conv = report->converged() && point.k == report->converged_k;
        table.AddRow({DatasetDisplayName(id), EstimatorKindName(kind),
                      StrFormat("%u", point.k),
                      bench::Fmt(point.avg_variance * 1e3),
                      bench::Fmt(point.avg_reliability),
                      bench::Fmt(point.dispersion * 1e3),
                      conv ? "<== conv" : ""});
      }
      summary.AddRow({DatasetDisplayName(id), EstimatorKindName(kind),
                      report->converged() ? StrFormat("%u", report->converged_k)
                                          : "not reached"});
    }
  }
  bench::PrintTable(table, "fig07_variance_curves");
  std::printf("Convergence summary (paper: RHH/RSS typically need ~500 fewer "
              "samples than MC-based methods):\n");
  bench::PrintTable(summary, "fig07_convergence_summary");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
