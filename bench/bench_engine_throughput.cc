// Engine throughput sweep: the same MC workload pushed through the
// QueryEngine at 1, 2, 4, ... worker threads, with the result cache off
// (every query computes) and then on (repeats served from cache).
//
// The exit code enforces eleven invariants — this bench is the CI smoke gate:
//   1. every thread count returns bit-identical estimates;
//   2. QueryEngine::Create(kBfsSharing, 8 threads) builds the edge
//      bit-vector index exactly once (shared across replicas), and the
//      deduped index footprint equals ONE index, not eight;
//   3. single-flight coalescing answers match the uncoalesced reference;
//   4. a mixed workload (st + top-k + reliable-set + distance in one batch)
//      is bit-identical at 1/2/8 threads with the cache on and off, and its
//      top-k / reliable-set answers match the standalone single-query APIs;
//   5. sweep sharing: a Zipf-hot same-source mix (top-k k in {5, 10},
//      reliable-set, s-t over a few hot sources) executes at most ONE
//      EstimateFromSource per distinct (source, generation) — stats-gated —
//      with every derived answer bit-identical to the standalone APIs and
//      across 1/2/8 threads, result cache on and off;
//   6. stratified parallel sweeps: a single hot-source sweep partitioned
//      into S strata is bit-identical at 1/2/8 threads for each fixed
//      S in {1, 4, 16}, and at 8 threads the coalesced waiters steal > 0
//      strata of the one in-flight sweep (stats-gated) — the wall-clock
//      speedup of the 8-thread vs 1-thread hot sweep is additionally gated
//      at >= 2x on hosts with >= 8 hardware threads;
//   7. tracing overhead: the same workload with full-rate span tracing
//      (trace_sample_rate = 1) answers bit-identically to the untraced run,
//      and its best-of-3 throughput stays >= 0.95x the untraced best —
//      the throughput floor gated only on hosts with >= 8 hardware threads
//      (timing on oversubscribed runners is noise);
//   8. succinct storage: the compact graph layout (rank/select offsets,
//      packed adjacency, dictionary-coded probabilities) holds resident
//      bytes <= 0.6x the raw CSR, answers a BFS-Sharing sweep mix
//      bit-identically to the raw layout at 1/2/8 threads, and sustains
//      >= 0.9x the raw layout's best-of-3 sweep throughput — the byte and
//      bit-identity gates always enforced, the throughput floor only on
//      hosts with >= 8 hardware threads;
//   9. adaptive routing: on a bottleneck workload (fringe sources with
//      escape probability 0.05) the routed engine answers bit-identically at
//      1/2/8 threads, within 0.1 of the static estimates (equal accuracy),
//      with a genuinely cut budget and zero fallbacks — and sustains
//      >= 1.2x the static engine's best-of-3 throughput, the floor gated
//      only on hosts with >= 8 hardware threads; router off must stay
//      bit-identical to the pre-flag engine;
//  10. robustness: the deadline machinery is free when unused — a generous
//      default deadline (60 s, never fires) answers bit-identically to the
//      deadline-free engine and sustains >= 0.95x its best-of-3 throughput
//      (the floor gated only on hosts with >= 8 hardware threads) — and
//      under an overload burst (submissions far outrunning the workers) the
//      load-shedding engine sheds at admission instead of queueing
//      unboundedly: shed > 0, every admitted query still answers OK, the
//      shed + drained counts partition the burst exactly, and the admitted
//      p95 stays <= 2x the uncontended p95 (floor gated >= 8 hw threads);
//  11. persistence: with a published snapshot in EngineOptions::persist_dir,
//      QueryEngine::Create cold-starts by mmapping the BFS-Sharing index
//      >= 10x faster than the rebuild-from-source path (best of 3 each —
//      always gated: the ratio compares an O(1) map against an O(L*m)
//      index build, so it is scale-invariant), the restored engine reports
//      snapshot_restored, a warm-restored engine replays the journaled
//      result/sweep caches (first query a cache hit, > 0 entries of each
//      kind), and every answer of the restored engines — at 1, 2, and 8
//      threads — is bit-identical to the freshly-built reference.
// Scaling (the 1-vs-4-thread speedup) is reported but not gated: it depends
// on the host's real core count, and this bench must stay green on
// single-core CI runners.
//
// `--json <path>` additionally writes the measured rows, sweep-sharing
// stats, per-stage latency breakdown, and gate outcomes as machine-readable
// JSON (uploaded by CI as BENCH_engine_throughput.json). `--stats-json
// <path>` writes one full MetricsRegistry::ExportJson() scrape of the traced
// engine (uploaded by CI as STATS_engine.json). `--persist-json <path>`
// writes the persistence gate's measurements (cold-start timings, speedup,
// warm-restore counts, verdict) standalone (uploaded as BENCH_persist.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "eval/query_gen.h"
#include "graph/datasets.h"
#include "graph/graph_builder.h"
#include "reliability/bfs_sharing.h"
#include "reliability/reliable_set.h"
#include "reliability/top_k.h"

using namespace relcomp;

namespace {

/// The workload: the paper's h=2 pairs, each repeated `repeats` times in
/// round-robin order (a crude model of a hot serving mix).
std::vector<ReliabilityQuery> MakeWorkload(
    const std::vector<ReliabilityQuery>& pairs, uint32_t repeats) {
  std::vector<ReliabilityQuery> workload;
  workload.reserve(pairs.size() * repeats);
  for (uint32_t r = 0; r < repeats; ++r) {
    workload.insert(workload.end(), pairs.begin(), pairs.end());
  }
  return workload;
}

bool BitIdentical(const std::vector<EngineResult>& a,
                  const std::vector<EngineResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].reliability, &b[i].reliability, sizeof(double)) !=
        0) {
      return false;
    }
    // Ranked payloads (top-k / reliable-set) must match node-for-node.
    if (a[i].targets.size() != b[i].targets.size()) return false;
    for (size_t j = 0; j < a[i].targets.size(); ++j) {
      if (a[i].targets[j].node != b[i].targets[j].node ||
          std::memcmp(&a[i].targets[j].reliability,
                      &b[i].targets[j].reliability, sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

/// Per-query statuses mean a failed estimate no longer fails RunBatch —
/// the gate must check them explicitly, or universal failure would sail
/// through the bit-identity checks as rows of identical zeros.
bool AllOk(const std::vector<EngineResult>& results) {
  for (const EngineResult& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "query (%u, %u) failed: %s\n", r.query.source,
                   r.query.target, r.status.ToString().c_str());
      return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// What the persistence gate measured: cold-start timings (rebuild vs mmap),
/// the warm-restore counts of the restarted engine, and the verdict.
struct PersistGateResults {
  double rebuild_best_s = 0.0;  ///< best-of-3 Create, rebuild-from-source
  double mmap_best_s = 0.0;     ///< best-of-3 Create, snapshot-mmap path
  uint64_t warm_results = 0;    ///< result-cache entries replayed at restart
  uint64_t warm_sweeps = 0;     ///< sweep-cache entries replayed at restart
  uint64_t warm_skipped = 0;    ///< journal records refused (wrong config)
  bool warm_first_query_hit = false;
  bool ok = true;

  double speedup() const {
    return mmap_best_s > 0.0 ? rebuild_best_s / mmap_best_s : 0.0;
  }
};

/// The "persist" JSON object shared by the main --json document and the
/// standalone --persist-json file.
std::string PersistJsonObject(const PersistGateResults& p) {
  return StrFormat(
      "{\"rebuild_cold_start_s\": %.6f, \"mmap_cold_start_s\": %.6f, "
      "\"cold_start_speedup\": %.2f, \"warm_results_restored\": %llu, "
      "\"warm_sweeps_restored\": %llu, \"warm_skipped\": %llu, "
      "\"warm_first_query_hit\": %s, \"persist_ok\": %s}",
      p.rebuild_best_s, p.mmap_best_s, p.speedup(),
      static_cast<unsigned long long>(p.warm_results),
      static_cast<unsigned long long>(p.warm_sweeps),
      static_cast<unsigned long long>(p.warm_skipped),
      p.warm_first_query_hit ? "true" : "false", p.ok ? "true" : "false");
}

/// Standalone persistence-gate document (uploaded by CI as
/// BENCH_persist.json).
bool WritePersistJson(const std::string& path, const std::string& dataset,
                      const PersistGateResults& p) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for persist JSON export\n",
                 path.c_str());
    return false;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"engine_persist\",\n"
               "  \"dataset\": \"%s\",\n"
               "  \"persist\": %s\n"
               "}\n",
               JsonEscape(dataset).c_str(), PersistJsonObject(p).c_str());
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

/// Machine-readable results: per-config rows, sweep-sharing stats, and the
/// gate verdicts, for trend tracking across CI runs.
bool WriteJson(const std::string& path, const std::string& dataset,
               const BenchConfig& config,
               const std::vector<std::pair<std::string, EngineStatsSnapshot>>&
                   rows,
               size_t sweep_distinct_sources,
               const EngineStatsSnapshot& sweep_snapshot,
               const EngineStatsSnapshot& strata_snapshot,
               double strata_wall_1thread, double strata_wall_8threads,
               double untraced_qps, double traced_qps, bool trace_gated,
               size_t storage_raw_bytes, size_t storage_compact_bytes,
               size_t storage_num_edges, double storage_raw_qps,
               double storage_compact_qps, bool storage_gated,
               double router_static_qps, double router_routed_qps,
               double router_routed_k_avg, uint64_t router_decisions,
               uint64_t router_fallbacks, bool router_gated,
               double nodeadline_qps, double deadline_qps,
               size_t burst_submitted, size_t burst_admitted,
               uint64_t burst_shed, double uncontended_p95_ms,
               double burst_p95_ms, bool robustness_gated,
               const PersistGateResults& persist,
               const std::string& stages_json, bool identical,
               bool shared_index_ok, bool mixed_ok, bool sweep_ok,
               bool strata_ok, bool trace_ok, bool storage_ok,
               bool router_ok, bool robustness_ok) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for JSON export\n",
                 path.c_str());
    return false;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"engine_throughput\",\n"
               "  \"dataset\": \"%s\",\n"
               "  \"num_samples\": %u,\n",
               JsonEscape(dataset).c_str(), config.max_k);
  std::fprintf(out,
               "  \"gates\": {\"bit_identical\": %s, \"shared_index\": %s, "
               "\"mixed_workload\": %s, \"sweep_sharing\": %s, "
               "\"stratified_parallel\": %s, \"tracing_overhead\": %s, "
               "\"storage\": %s, \"adaptive_router\": %s, "
               "\"robustness\": %s, \"persist\": %s},\n",
               identical ? "true" : "false",
               shared_index_ok ? "true" : "false", mixed_ok ? "true" : "false",
               sweep_ok ? "true" : "false", strata_ok ? "true" : "false",
               trace_ok ? "true" : "false", storage_ok ? "true" : "false",
               router_ok ? "true" : "false", robustness_ok ? "true" : "false",
               persist.ok ? "true" : "false");
  std::fprintf(out,
               "  \"tracing\": {\"untraced_qps\": %.1f, \"traced_qps\": %.1f, "
               "\"overhead_ratio\": %.4f, \"floor_gated\": %s},\n",
               untraced_qps, traced_qps,
               untraced_qps > 0.0 ? traced_qps / untraced_qps : 0.0,
               trace_gated ? "true" : "false");
  const double edges = static_cast<double>(storage_num_edges);
  std::fprintf(
      out,
      "  \"storage\": {\"raw_bytes\": %zu, \"compact_bytes\": %zu, "
      "\"bytes_ratio\": %.4f, \"raw_bytes_per_edge\": %.2f, "
      "\"compact_bytes_per_edge\": %.2f, \"raw_sweep_qps\": %.1f, "
      "\"compact_sweep_qps\": %.1f, \"throughput_ratio\": %.4f, "
      "\"floor_gated\": %s},\n",
      storage_raw_bytes, storage_compact_bytes,
      storage_raw_bytes > 0
          ? static_cast<double>(storage_compact_bytes) /
                static_cast<double>(storage_raw_bytes)
          : 0.0,
      edges > 0.0 ? static_cast<double>(storage_raw_bytes) / edges : 0.0,
      edges > 0.0 ? static_cast<double>(storage_compact_bytes) / edges : 0.0,
      storage_raw_qps, storage_compact_qps,
      storage_raw_qps > 0.0 ? storage_compact_qps / storage_raw_qps : 0.0,
      storage_gated ? "true" : "false");
  std::fprintf(
      out,
      "  \"router\": {\"static_qps\": %.1f, \"routed_qps\": %.1f, "
      "\"speedup\": %.4f, \"routed_k_avg\": %.1f, \"decisions\": %llu, "
      "\"fallbacks\": %llu, \"floor_gated\": %s},\n",
      router_static_qps, router_routed_qps,
      router_static_qps > 0.0 ? router_routed_qps / router_static_qps : 0.0,
      router_routed_k_avg,
      static_cast<unsigned long long>(router_decisions),
      static_cast<unsigned long long>(router_fallbacks),
      router_gated ? "true" : "false");
  std::fprintf(
      out,
      "  \"robustness\": {\"no_deadline_qps\": %.1f, \"deadline_qps\": %.1f, "
      "\"deadline_overhead_ratio\": %.4f, \"burst_submitted\": %zu, "
      "\"burst_admitted\": %zu, \"burst_shed\": %llu, "
      "\"uncontended_p95_ms\": %.4f, \"burst_p95_ms\": %.4f, "
      "\"floor_gated\": %s},\n",
      nodeadline_qps, deadline_qps,
      nodeadline_qps > 0.0 ? deadline_qps / nodeadline_qps : 0.0,
      burst_submitted, burst_admitted,
      static_cast<unsigned long long>(burst_shed), uncontended_p95_ms,
      burst_p95_ms, robustness_gated ? "true" : "false");
  std::fprintf(out, "  \"persist\": %s,\n", PersistJsonObject(persist).c_str());
  std::fprintf(out, "  \"stages\": %s,\n",
               stages_json.empty() ? "{}" : stages_json.c_str());
  std::fprintf(
      out,
      "  \"sweep_sharing\": {\"distinct_sources\": %zu, "
      "\"sweep_executed\": %llu, \"sweep_hits\": %llu, "
      "\"sweep_coalesced\": %llu, \"prebuilt_used\": %llu},\n",
      sweep_distinct_sources,
      static_cast<unsigned long long>(sweep_snapshot.sweep_executed),
      static_cast<unsigned long long>(sweep_snapshot.sweep_hits),
      static_cast<unsigned long long>(sweep_snapshot.sweep_coalesced),
      static_cast<unsigned long long>(sweep_snapshot.prebuilt_used));
  std::fprintf(
      out,
      "  \"stratified\": {\"strata_executed\": %llu, \"strata_stolen\": %llu, "
      "\"scout_warms\": %llu, \"sweep_p50_ms\": %.4f, \"sweep_p95_ms\": %.4f, "
      "\"hot_sweep_wall_1thread_s\": %.6f, \"hot_sweep_wall_8threads_s\": "
      "%.6f, \"hot_sweep_speedup\": %.3f},\n",
      static_cast<unsigned long long>(strata_snapshot.strata_executed),
      static_cast<unsigned long long>(strata_snapshot.strata_stolen),
      static_cast<unsigned long long>(strata_snapshot.scout_warms),
      strata_snapshot.sweep_p50_ms, strata_snapshot.sweep_p95_ms,
      strata_wall_1thread, strata_wall_8threads,
      strata_wall_8threads > 0.0 ? strata_wall_1thread / strata_wall_8threads
                                 : 0.0);
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineStatsSnapshot& s = rows[i].second;
    std::fprintf(
        out,
        "    {\"config\": \"%s\", \"queries\": %llu, \"executed\": %llu, "
        "\"coalesced\": %llu, \"sweep_executed\": %llu, \"sweep_hits\": %llu, "
        "\"sweep_coalesced\": %llu, \"strata_executed\": %llu, "
        "\"strata_stolen\": %llu, \"scout_warms\": %llu, "
        "\"sweep_p50_ms\": %.4f, \"sweep_p95_ms\": %.4f, "
        "\"qps\": %.1f, \"span_qps\": %.1f, "
        "\"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"max_ms\": %.4f, \"cache_hit_rate\": %.4f}%s\n",
        JsonEscape(rows[i].first).c_str(),
        static_cast<unsigned long long>(s.queries),
        static_cast<unsigned long long>(s.executed),
        static_cast<unsigned long long>(s.coalesced),
        static_cast<unsigned long long>(s.sweep_executed),
        static_cast<unsigned long long>(s.sweep_hits),
        static_cast<unsigned long long>(s.sweep_coalesced),
        static_cast<unsigned long long>(s.strata_executed),
        static_cast<unsigned long long>(s.strata_stolen),
        static_cast<unsigned long long>(s.scout_warms), s.sweep_p50_ms,
        s.sweep_p95_ms, s.throughput_qps,
        s.span_qps, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms,
        s.cache.hit_rate(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string stats_json_path;
  std::string persist_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--persist-json") == 0 && i + 1 < argc) {
      persist_json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--stats-json stats.json] "
                   "[--persist-json persist.json]\n",
                   argv[0]);
      return 2;
    }
  }
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "bench_engine_throughput: QueryEngine scaling, MC estimator",
      "engine-side: batch throughput scales with worker threads while "
      "results stay bit-identical; repeats are served from the result cache",
      config);

  Dataset dataset = bench::Unwrap(
      MakeDataset(DatasetId::kLastFm, config.scale, config.seed),
      "MakeDataset");
  QueryGenOptions query_options;
  query_options.num_pairs = config.num_pairs;
  query_options.seed = config.seed ^ 0xEAC4E;
  const std::vector<ReliabilityQuery> pairs = bench::Unwrap(
      GenerateQueries(dataset.graph, query_options), "GenerateQueries");
  const std::vector<ReliabilityQuery> workload =
      MakeWorkload(pairs, std::max(1u, config.repeats));

  uint32_t max_threads = config.num_threads;
  if (max_threads == 0) {
    // Sweep to at least 4 so the 1-vs-4 speedup row exists even when the
    // host lies about (or restricts) its core count.
    max_threads = std::max(4u, std::thread::hardware_concurrency());
  }

  std::printf("dataset=%s pairs=%zu workload=%zu queries K=%u threads<=%u\n\n",
              dataset.name.c_str(), pairs.size(), workload.size(),
              config.max_k, max_threads);

  EngineOptions base;
  base.kind = EstimatorKind::kMonteCarlo;
  base.num_samples = config.max_k;
  base.seed = config.seed;

  std::vector<std::pair<std::string, EngineStatsSnapshot>> rows;
  std::vector<EngineResult> reference;
  double qps_1thread = 0.0;
  double qps_4threads = 0.0;
  bool identical = true;

  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    EngineOptions options = base;
    options.num_threads = threads;
    options.enable_cache = false;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create");
    std::vector<EngineResult> results =
        bench::Unwrap(engine->RunBatch(workload), "RunBatch");
    identical = identical && AllOk(results);
    const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
    rows.emplace_back(StrFormat("%u thread%s, no cache", threads,
                                threads == 1 ? "" : "s"),
                      snapshot);
    if (threads == 1) {
      reference = std::move(results);
      qps_1thread = snapshot.throughput_qps;
    } else {
      identical = identical && BitIdentical(reference, results);
      if (threads == 4) qps_4threads = snapshot.throughput_qps;
    }
  }

  // Cache on: repeats beyond the first pass are hits.
  {
    EngineOptions options = base;
    options.num_threads = max_threads;
    options.enable_cache = true;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create");
    const std::vector<EngineResult> results =
        bench::Unwrap(engine->RunBatch(workload), "RunBatch");
    identical = identical && AllOk(results) && BitIdentical(reference, results);
    rows.emplace_back(StrFormat("%u thread%s, cache", max_threads,
                                max_threads == 1 ? "" : "s"),
                      engine->StatsSnapshot());
  }

  // Coalescing A/B on the hottest mix: all repeats of one query at once.
  {
    std::vector<ReliabilityQuery> twins(64, pairs.front());
    EngineOptions options = base;
    options.num_threads = max_threads;
    options.enable_cache = true;
    options.enable_coalescing = true;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create");
    const std::vector<EngineResult> results =
        bench::Unwrap(engine->RunBatch(twins), "RunBatch");
    const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
    rows.emplace_back(
        StrFormat("%u threads, 64 identical (single-flight)", max_threads),
        snapshot);
    identical = identical && AllOk(results) && snapshot.executed == 1;
    for (const EngineResult& r : results) {
      identical = identical &&
                  std::memcmp(&r.reliability, &results.front().reliability,
                              sizeof(double)) == 0;
    }
  }

  // Mixed-workload gate: one batch spanning all four workload kinds must be
  // bit-identical at 1/2/8 threads (cache on and off), and the engine's
  // top-k / reliable-set answers must match the standalone single-query
  // APIs exactly.
  bool mixed_ok = true;
  {
    MixedWorkloadOptions mix;
    mix.pairs.num_pairs = config.num_pairs;
    mix.pairs.seed = config.seed ^ 0xEAC4E;
    mix.num_queries = std::max<uint32_t>(64, 2 * config.num_pairs);
    mix.k = 10;
    mix.eta = 0.2;
    mix.max_hops = 4;
    mix.seed = config.seed ^ 0x313D;
    const std::vector<EngineQuery> mixed = bench::Unwrap(
        GenerateMixedWorkload(dataset.graph, mix), "GenerateMixedWorkload");

    std::vector<EngineResult> mixed_reference;
    for (const uint32_t threads : {1u, 2u, 8u}) {
      for (const bool cache : {false, true}) {
        EngineOptions options = base;
        options.num_threads = threads;
        options.enable_cache = cache;
        auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                    "QueryEngine::Create(mixed)");
        std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(mixed), "RunBatch(mixed)");
        mixed_ok = mixed_ok && AllOk(results);
        if (threads == 1 && !cache) {
          rows.emplace_back("1 thread, mixed workload",
                            engine->StatsSnapshot());
          mixed_reference = std::move(results);
        } else {
          mixed_ok = mixed_ok && BitIdentical(mixed_reference, results);
        }
      }
    }

    // Standalone equivalence, checked against the 1-thread reference run.
    EngineOptions options = base;
    options.num_threads = 1;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create(mixed standalone)");
    size_t sweeps_checked = 0;
    for (size_t i = 0; i < mixed.size(); ++i) {
      const EngineQuery& query = mixed[i];
      const EngineResult& got = mixed_reference[i];
      if (query.workload == WorkloadKind::kTopK) {
        // Node-for-node, bit-for-bit against the standalone ranking.
        const std::vector<ReliableTarget> expected = bench::Unwrap(
            TopKReliableTargetsMonteCarlo(dataset.graph, query.source, query.k,
                                          base.num_samples,
                                          engine->QuerySeed(query)),
            "TopKReliableTargetsMonteCarlo");
        mixed_ok = mixed_ok && got.targets.size() == expected.size();
        for (size_t j = 0; mixed_ok && j < expected.size(); ++j) {
          mixed_ok = got.targets[j].node == expected[j].node &&
                     std::memcmp(&got.targets[j].reliability,
                                 &expected[j].reliability,
                                 sizeof(double)) == 0;
        }
        ++sweeps_checked;
      } else if (query.workload == WorkloadKind::kReliableSet) {
        const ReliableSetResult expected = bench::Unwrap(
            ReliableSetMonteCarlo(dataset.graph, query.source, query.eta,
                                  base.num_samples, engine->QuerySeed(query)),
            "ReliableSetMonteCarlo");
        mixed_ok = mixed_ok && got.targets.size() == expected.members.size();
        for (size_t j = 0; mixed_ok && j < expected.members.size(); ++j) {
          mixed_ok = got.targets[j].node == expected.members[j].node &&
                     std::memcmp(&got.targets[j].reliability,
                                 &expected.members[j].reliability,
                                 sizeof(double)) == 0;
        }
        ++sweeps_checked;
      }
    }
    std::printf("mixed-workload gate: %zu sweep queries checked against the "
                "standalone APIs: %s\n",
                sweeps_checked,
                mixed_ok ? "pass" : "FAIL — WORKLOAD PIPELINE DIVERGED");
  }

  // Sweep-sharing gate: the hot pattern the SweepCache exists for — many
  // parameterizations of a few Zipf-hot sources. Top-k (k = 5 and 10),
  // reliable-set, and s-t queries over each hot source, repeated; the engine
  // must run at most ONE EstimateFromSource per distinct (source,
  // generation) while every derived answer stays bit-identical to the
  // standalone single-query APIs and across 1/2/8 threads, cache on/off.
  bool sweep_ok = true;
  size_t sweep_distinct_sources = 0;
  EngineStatsSnapshot sweep_snapshot;
  {
    std::vector<NodeId> hot;
    std::vector<NodeId> hot_targets;
    for (const ReliabilityQuery& pair : pairs) {
      if (hot.size() >= 4) break;
      if (std::find(hot.begin(), hot.end(), pair.source) == hot.end()) {
        hot.push_back(pair.source);
        hot_targets.push_back(pair.target);
      }
    }
    sweep_distinct_sources = hot.size();
    std::vector<EngineQuery> sweep_mix;
    for (uint32_t repeat = 0; repeat < 8; ++repeat) {
      for (size_t i = 0; i < hot.size(); ++i) {
        sweep_mix.push_back(EngineQuery::TopK(hot[i], 5));
        sweep_mix.push_back(EngineQuery::TopK(hot[i], 10));
        sweep_mix.push_back(EngineQuery::ReliableSet(hot[i], 0.2));
        sweep_mix.push_back(EngineQuery::St(hot[i], hot_targets[i]));
      }
    }

    std::vector<EngineResult> sweep_reference;
    for (const uint32_t threads : {1u, 2u, 8u}) {
      for (const bool cache : {false, true}) {
        EngineOptions options = base;
        options.num_threads = threads;
        options.enable_cache = cache;
        auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                    "QueryEngine::Create(sweep)");
        std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(sweep_mix), "RunBatch(sweep)");
        sweep_ok = sweep_ok && AllOk(results);
        const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
        // The stats gate: <= 1 sweep per distinct source, every config.
        sweep_ok = sweep_ok && snapshot.sweep_executed <= hot.size();
        if (threads == 1 && !cache) {
          rows.emplace_back("1 thread, same-source sweep mix", snapshot);
          sweep_snapshot = snapshot;
          sweep_reference = std::move(results);
        } else {
          sweep_ok = sweep_ok && BitIdentical(sweep_reference, results);
        }
      }
    }

    // Derived answers vs the standalone APIs, on the reference run.
    EngineOptions options = base;
    options.num_threads = 1;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create(sweep standalone)");
    for (size_t i = 0; i < sweep_mix.size() && sweep_ok; ++i) {
      const EngineQuery& query = sweep_mix[i];
      const EngineResult& got = sweep_reference[i];
      std::vector<ReliableTarget> expected;
      if (query.workload == WorkloadKind::kTopK) {
        expected = bench::Unwrap(
            TopKReliableTargetsMonteCarlo(dataset.graph, query.source, query.k,
                                          base.num_samples,
                                          engine->QuerySeed(query)),
            "TopKReliableTargetsMonteCarlo(sweep)");
      } else if (query.workload == WorkloadKind::kReliableSet) {
        expected = bench::Unwrap(
                       ReliableSetMonteCarlo(dataset.graph, query.source,
                                             query.eta, base.num_samples,
                                             engine->QuerySeed(query)),
                       "ReliableSetMonteCarlo(sweep)")
                       .members;
      } else {
        continue;
      }
      sweep_ok = sweep_ok && got.targets.size() == expected.size();
      for (size_t j = 0; sweep_ok && j < expected.size(); ++j) {
        sweep_ok = got.targets[j].node == expected[j].node &&
                   std::memcmp(&got.targets[j].reliability,
                               &expected[j].reliability, sizeof(double)) == 0;
      }
    }
    std::printf(
        "sweep-sharing gate: %zu distinct sources, %zu queries -> %llu "
        "sweeps executed (want <= %zu), %llu memo hits, %llu coalesced: %s\n",
        hot.size(), sweep_mix.size(),
        static_cast<unsigned long long>(sweep_snapshot.sweep_executed),
        hot.size(),
        static_cast<unsigned long long>(sweep_snapshot.sweep_hits),
        static_cast<unsigned long long>(sweep_snapshot.sweep_coalesced),
        sweep_ok ? "pass" : "FAIL — SWEEP SHARING DIVERGED");
  }

  // Stratified-parallel gate: ONE hot source asked for 16 different top-k
  // parameterizations — exactly one sweep runs, partitioned into S strata
  // the coalesced waiters steal. For each fixed S in {1, 4, 16} the results
  // must be bit-identical at 1/2/8 threads (the canonical-in-(content, S)
  // contract); at 8 threads with S = 16 the waiters must have stolen > 0
  // strata; and on hosts with >= 8 hardware threads the 8-thread hot-sweep
  // wall-clock must be >= 2x lower than the 1-thread run.
  bool strata_ok = true;
  EngineStatsSnapshot strata_snapshot;
  double strata_wall_1thread = 0.0;
  double strata_wall_8threads = 0.0;
  {
    const NodeId hot = pairs.front().source;
    std::vector<EngineQuery> hot_mix;
    for (uint32_t k = 1; k <= 16; ++k) {
      hot_mix.push_back(EngineQuery::TopK(hot, k));
    }
    // A sweep heavy enough that its parallelization is measurable and that
    // waiters reliably overlap the leader (several OS timeslices long even
    // on an oversubscribed host).
    const uint32_t strata_samples = std::max<uint32_t>(100000, config.max_k);
    const unsigned hardware = std::thread::hardware_concurrency();

    for (const uint32_t strata : {1u, 4u, 16u}) {
      std::vector<EngineResult> strata_reference;
      for (const uint32_t threads : {1u, 2u, 8u}) {
        EngineOptions options = base;
        options.num_threads = threads;
        options.num_samples = strata_samples;
        options.num_strata = strata;
        options.enable_cache = false;
        // Query-driven for this gate: the 16 waiters themselves must steal
        // (scout warm-ahead is exercised — and gated — by the sweep-sharing
        // mix above).
        options.enable_sweep_scout = false;
        auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                    "QueryEngine::Create(strata)");
        Timer wall;
        std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(hot_mix), "RunBatch(strata)");
        const double seconds = wall.ElapsedSeconds();
        strata_ok = strata_ok && AllOk(results);
        const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
        if (strata == 16) {
          if (threads == 1) strata_wall_1thread = seconds;
          if (threads == 8) {
            strata_wall_8threads = seconds;
            strata_snapshot = snapshot;
            rows.emplace_back("8 threads, stratified hot sweep (S=16)",
                              snapshot);
            // The stats gate: the one sweep ran as 16 scheduler strata, and
            // — given any real concurrency — the coalesced waiters stole
            // some instead of blocking. On a single-hardware-thread host
            // stealing depends on preemption timing, so it is reported but
            // not gated (same policy as the thread-scaling rows).
            strata_ok = strata_ok && snapshot.sweep_executed == 1 &&
                        snapshot.strata_executed == 16;
            if (hardware >= 2) {
              strata_ok = strata_ok && snapshot.strata_stolen > 0;
            }
          }
        }
        if (threads == 1) {
          strata_reference = std::move(results);
        } else {
          strata_ok = strata_ok && BitIdentical(strata_reference, results);
        }
      }
    }
    const double speedup = strata_wall_8threads > 0.0
                               ? strata_wall_1thread / strata_wall_8threads
                               : 0.0;
    const bool gate_speedup = hardware >= 8;
    if (gate_speedup) {
      strata_ok = strata_ok && speedup >= 2.0;
    }
    std::printf(
        "stratified-parallel gate: 1 hot source, 16 queries, S=16 -> "
        "%llu strata executed, %llu stolen by waiters (%s); "
        "hot sweep wall 1 thread %.4f s vs 8 threads %.4f s (%.2fx, "
        "%s >= 2x): %s\n",
        static_cast<unsigned long long>(strata_snapshot.strata_executed),
        static_cast<unsigned long long>(strata_snapshot.strata_stolen),
        hardware >= 2 ? "gated > 0" : "reported only, 1 hw thread",
        strata_wall_1thread, strata_wall_8threads, speedup,
        gate_speedup ? "gated" : "reported only (host < 8 hw threads), not",
        strata_ok ? "pass" : "FAIL — STRATIFIED SWEEPS DIVERGED");
  }

  // Tracing-overhead gate: full-rate span tracing must not change a single
  // answer bit, and must not cost more than 5% throughput. Each variant
  // takes its best of 3 fresh-engine runs (cache off, so every query
  // computes); the throughput floor is gated only on hosts with >= 8
  // hardware threads — on oversubscribed CI runners the ratio is noise and
  // is reported only.
  bool trace_ok = true;
  double untraced_qps = 0.0;
  double traced_qps = 0.0;
  std::string stages_json;
  std::string stats_export;
  {
    constexpr int kRuns = 3;
    const unsigned hardware = std::thread::hardware_concurrency();
    for (const bool traced : {false, true}) {
      for (int run = 0; run < kRuns; ++run) {
        EngineOptions options = base;
        options.num_threads = max_threads;
        options.enable_cache = false;
        options.trace_sample_rate = traced ? 1.0 : 0.0;
        auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                    "QueryEngine::Create(trace)");
        Timer wall;
        const std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(workload), "RunBatch(trace)");
        const double qps =
            static_cast<double>(workload.size()) / wall.ElapsedSeconds();
        trace_ok = trace_ok && AllOk(results) &&
                   BitIdentical(reference, results);
        double& best = traced ? traced_qps : untraced_qps;
        best = std::max(best, qps);
        if (traced && run + 1 == kRuns) {
          // The per-stage latency breakdown from the traced engine's
          // registry — the same histograms one ExportJson scrape carries.
          stages_json = "{";
          const char* stages[] = {"queue_wait", "cache_probe", "prepare",
                                  "stratum",    "merge",       "publish",
                                  "derive",     "sweep_wait"};
          bool first = true;
          for (const char* stage : stages) {
            const obs::HistogramSnapshot h =
                engine->metrics()
                    .GetHistogram("engine_stage_latency_ns", "stage", stage)
                    ->Snapshot();
            stages_json += StrFormat(
                "%s\"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
                "\"p99_ns\": %llu, \"max_ns\": %llu}",
                first ? "" : ", ", stage,
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.Quantile(0.50)),
                static_cast<unsigned long long>(h.Quantile(0.99)),
                static_cast<unsigned long long>(h.max));
            first = false;
          }
          stages_json += "}";
          stats_export = engine->metrics().ExportJson();
          rows.emplace_back(
              StrFormat("%u threads, no cache, traced", max_threads),
              engine->StatsSnapshot());
        }
      }
    }
    const double ratio =
        untraced_qps > 0.0 ? traced_qps / untraced_qps : 0.0;
    const bool gate_floor = hardware >= 8;
    if (gate_floor) {
      trace_ok = trace_ok && ratio >= 0.95;
    }
    std::printf(
        "tracing-overhead gate: untraced %.0f qps vs traced %.0f qps "
        "(%.3fx, %s >= 0.95x): %s\n",
        untraced_qps, traced_qps, ratio,
        gate_floor ? "gated" : "reported only (host < 8 hw threads), not",
        trace_ok ? "pass" : "FAIL — TRACING PERTURBED THE ENGINE");
  }

  // Succinct-storage gate: re-materialize the dataset in the compact layout
  // (rank/select offsets, packed adjacency columns, dictionary-coded
  // probabilities) and hold it to three invariants: (a) resident bytes
  // <= 0.6x the raw CSR; (b) a BFS-Sharing sweep mix answers bit-identically
  // to the raw layout at 1/2/8 threads; (c) best-of-3 sweep throughput
  // >= 0.9x the raw layout's. (a) and (b) are deterministic and always
  // enforced; the throughput floor follows the standing timing policy and is
  // gated only on hosts with >= 8 hardware threads.
  bool storage_ok = true;
  size_t storage_raw_bytes = 0;
  size_t storage_compact_bytes = 0;
  double storage_raw_qps = 0.0;
  double storage_compact_qps = 0.0;
  bool storage_gated = false;
  {
    const unsigned hardware = std::thread::hardware_concurrency();
    const UncertainGraph& raw_graph = dataset.graph;
    const UncertainGraph compact_graph = bench::Unwrap(
        GraphBuilder::FromGraph(raw_graph).Build(StorageLayout::kCompact),
        "GraphBuilder::Build(kCompact)");
    storage_raw_bytes = raw_graph.MemoryBytes();
    storage_compact_bytes = compact_graph.MemoryBytes();
    const double edges = static_cast<double>(raw_graph.num_edges());
    const double bytes_ratio =
        storage_raw_bytes > 0 ? static_cast<double>(storage_compact_bytes) /
                                    static_cast<double>(storage_raw_bytes)
                              : 0.0;
    storage_ok = storage_ok && bytes_ratio <= 0.6;

    // BFS Sharing exercises the packed edge words on every propagation step
    // — the exact code path the compact index changes. Modest L keeps the
    // repeated index builds cheap; bit-identity is independent of L.
    EngineOptions options = base;
    options.kind = EstimatorKind::kBfsSharing;
    options.num_samples = std::max(64u, std::min(256u, config.max_k));
    options.factory.bfs_sharing.index_samples = options.num_samples;

    // (b) bit-identity: top-k / reliable-set / s-t sweeps over the workload
    // sources, raw 1-thread as the reference.
    std::vector<EngineQuery> mix;
    for (const ReliabilityQuery& pair : pairs) {
      if (mix.size() >= 24) break;
      mix.push_back(EngineQuery::TopK(pair.source, 5));
      mix.push_back(EngineQuery::ReliableSet(pair.source, 0.2));
      mix.push_back(EngineQuery::St(pair.source, pair.target));
    }
    std::vector<EngineResult> storage_reference;
    for (const UncertainGraph* graph : {&raw_graph, &compact_graph}) {
      for (const uint32_t threads : {1u, 2u, 8u}) {
        EngineOptions run = options;
        run.num_threads = threads;
        run.enable_cache = false;
        auto engine = bench::Unwrap(QueryEngine::Create(*graph, run),
                                    "QueryEngine::Create(storage)");
        std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(mix), "RunBatch(storage)");
        storage_ok = storage_ok && AllOk(results);
        if (graph == &raw_graph && threads == 1) {
          storage_reference = std::move(results);
        } else {
          storage_ok = storage_ok && BitIdentical(storage_reference, results);
        }
      }
    }

    // (c) sweep throughput: the s-t pair workload, one shared-BFS sweep per
    // distinct source. Fresh engine per run so the sweep memo never serves a
    // repeat across runs.
    for (const bool compact : {false, true}) {
      const UncertainGraph& graph = compact ? compact_graph : raw_graph;
      double& best = compact ? storage_compact_qps : storage_raw_qps;
      for (int run = 0; run < 3; ++run) {
        EngineOptions timing = options;
        timing.num_threads = max_threads;
        timing.enable_cache = false;
        auto engine = bench::Unwrap(QueryEngine::Create(graph, timing),
                                    "QueryEngine::Create(storage timing)");
        Timer wall;
        const std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(pairs), "RunBatch(storage timing)");
        const double qps =
            static_cast<double>(pairs.size()) / wall.ElapsedSeconds();
        storage_ok = storage_ok && AllOk(results);
        best = std::max(best, qps);
        if (compact && run == 2) {
          rows.emplace_back(
              StrFormat("%u threads, bfs-sharing sweeps, compact layout",
                        max_threads),
              engine->StatsSnapshot());
        }
      }
    }
    const double throughput_ratio =
        storage_raw_qps > 0.0 ? storage_compact_qps / storage_raw_qps : 0.0;
    storage_gated = hardware >= 8;
    if (storage_gated) {
      storage_ok = storage_ok && throughput_ratio >= 0.9;
    }
    std::printf(
        "succinct-storage gate: raw %s vs compact %s (%.3fx, gated <= 0.6x; "
        "%.1f vs %.1f bytes/edge); sweep throughput raw %.0f qps vs compact "
        "%.0f qps (%.3fx, %s >= 0.9x): %s\n",
        HumanBytes(storage_raw_bytes).c_str(),
        HumanBytes(storage_compact_bytes).c_str(), bytes_ratio,
        edges > 0.0 ? static_cast<double>(storage_raw_bytes) / edges : 0.0,
        edges > 0.0 ? static_cast<double>(storage_compact_bytes) / edges : 0.0,
        storage_raw_qps, storage_compact_qps, throughput_ratio,
        storage_gated ? "gated" : "reported only (host < 8 hw threads), not",
        storage_ok ? "pass" : "FAIL — COMPACT LAYOUT REGRESSED");
  }

  // Adaptive-router gate: the budget lever on a workload it provably helps.
  // A synthetic bottleneck graph — fringe sources whose single out-edge has
  // p = 0.05 into a well-connected core — bounds every fringe answer by
  // eps(s) = 0.05, so the router's equal-accuracy budget cut (K' ~ 4 eps
  // (1 - eps) K) runs the same queries at a fraction of the static budget
  // without widening the worst-case confidence interval. Gates:
  //   (a) routed answers are bit-identical at 1/2/8 threads (decisions are
  //       pure functions of the query, never of the schedule);
  //   (b) router-off answers are bit-identical to an engine that predates
  //       the flag (enable_router defaults to false, so the static runs
  //       double as the reference), across 1/2/8 threads;
  //   (c) equal accuracy: every routed estimate within 0.1 of the static
  //       one (>> 6 sigma at the routed budget, so never flaky, while a
  //       broken budget cut overshoots it immediately);
  //   (d) the routed plans actually cut the budget, no fallback engaged;
  //   (e) best-of-3 routed throughput >= 1.2x static — gated only on hosts
  //       with >= 8 hardware threads (standing timing policy).
  bool router_ok = true;
  double router_static_qps = 0.0;
  double router_routed_qps = 0.0;
  bool router_gated = false;
  double router_routed_k_avg = 0.0;
  EngineStatsSnapshot router_snapshot;
  {
    const unsigned hardware = std::thread::hardware_concurrency();
    constexpr NodeId kCore = 48;
    constexpr NodeId kFringe = 96;
    GraphBuilder builder(kCore + kFringe);
    for (NodeId i = 0; i < kCore; ++i) {
      builder.AddEdge(i, (i + 1) % kCore, 0.9).CheckOK();
      builder.AddEdge(i, (i + 7) % kCore, 0.7).CheckOK();
    }
    for (NodeId f = 0; f < kFringe; ++f) {
      builder.AddEdge(kCore + f, f % kCore, 0.05).CheckOK();
    }
    const UncertainGraph bottleneck =
        bench::Unwrap(builder.Build(), "GraphBuilder::Build(router)");

    std::vector<EngineQuery> fringe_mix;
    for (uint32_t repeat = 0; repeat < 6; ++repeat) {
      for (NodeId f = 0; f < kFringe; ++f) {
        fringe_mix.push_back(
            EngineQuery::St(kCore + f, (f * 13 + repeat * 17 + 5) % kCore));
      }
    }

    EngineOptions router_base = base;
    router_base.num_samples = std::max(2000u, config.max_k);
    router_base.enable_cache = false;

    // (a) + (b): the thread-count determinism matrix, routed and static.
    std::vector<EngineResult> static_reference;
    std::vector<EngineResult> routed_reference;
    for (const bool routed : {false, true}) {
      std::vector<EngineResult>& reference_results =
          routed ? routed_reference : static_reference;
      for (const uint32_t threads : {1u, 2u, 8u}) {
        EngineOptions options = router_base;
        options.num_threads = threads;
        options.enable_router = routed;
        auto engine = bench::Unwrap(QueryEngine::Create(bottleneck, options),
                                    "QueryEngine::Create(router)");
        std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(fringe_mix), "RunBatch(router)");
        router_ok = router_ok && AllOk(results);
        if (threads == 1) {
          reference_results = std::move(results);
        } else {
          router_ok = router_ok && BitIdentical(reference_results, results);
        }
        if (routed && threads == 8) {
          router_snapshot = engine->StatsSnapshot();
          rows.emplace_back("8 threads, routed bottleneck mix",
                            router_snapshot);
          // (d) no fallback under the default generous gate.
          router_ok = router_ok && !engine->router()->fallback_engaged();
        }
      }
    }
    router_ok = router_ok && router_snapshot.router_decisions > 0 &&
                router_snapshot.router_fallbacks == 0;

    // (c) + (d): equal accuracy and a real budget cut, pairwise on the
    // 1-thread reference runs.
    uint64_t routed_budget_sum = 0;
    bool any_cut = false;
    for (size_t i = 0; i < fringe_mix.size() && router_ok; ++i) {
      const double diff = routed_reference[i].reliability -
                          static_reference[i].reliability;
      router_ok = router_ok && diff <= 0.1 && diff >= -0.1;
      router_ok = router_ok && routed_reference[i].plan.routed;
      routed_budget_sum += routed_reference[i].plan.num_samples;
      any_cut = any_cut || routed_reference[i].plan.num_samples <
                               router_base.num_samples;
    }
    router_ok = router_ok && any_cut;
    router_routed_k_avg =
        fringe_mix.empty() ? 0.0
                           : static_cast<double>(routed_budget_sum) /
                                 static_cast<double>(fringe_mix.size());

    // (e) best-of-3 throughput, fresh engine per run so no state carries.
    for (const bool routed : {false, true}) {
      double& best = routed ? router_routed_qps : router_static_qps;
      for (int run = 0; run < 3; ++run) {
        EngineOptions options = router_base;
        options.num_threads = max_threads;
        options.enable_router = routed;
        auto engine = bench::Unwrap(QueryEngine::Create(bottleneck, options),
                                    "QueryEngine::Create(router timing)");
        Timer wall;
        const std::vector<EngineResult> results = bench::Unwrap(
            engine->RunBatch(fringe_mix), "RunBatch(router timing)");
        const double qps =
            static_cast<double>(fringe_mix.size()) / wall.ElapsedSeconds();
        router_ok = router_ok && AllOk(results);
        best = std::max(best, qps);
      }
    }
    const double speedup = router_static_qps > 0.0
                               ? router_routed_qps / router_static_qps
                               : 0.0;
    router_gated = hardware >= 8;
    if (router_gated) {
      router_ok = router_ok && speedup >= 1.2;
    }
    std::printf(
        "adaptive-router gate: %zu bottleneck queries, static K=%u vs routed "
        "K avg %.0f, %llu decisions, %llu fallbacks; static %.0f qps vs "
        "routed %.0f qps (%.2fx, %s >= 1.2x): %s\n",
        fringe_mix.size(), router_base.num_samples, router_routed_k_avg,
        static_cast<unsigned long long>(router_snapshot.router_decisions),
        static_cast<unsigned long long>(router_snapshot.router_fallbacks),
        router_static_qps, router_routed_qps, speedup,
        router_gated ? "gated" : "reported only (host < 8 hw threads), not",
        router_ok ? "pass" : "FAIL — ROUTER REGRESSED OR DIVERGED");
  }

  // Robustness gate: fault-tolerant serving must not tax the fault-free
  // path, and overload must shed instead of queueing without bound.
  //   (a) deadline machinery: a generous default deadline (60 s, never
  //       fires) arms a CancelToken that every sample loop polls; the run
  //       must stay bit-identical to the deadline-free engine (always
  //       gated) and its best-of-3 throughput >= 0.95x (gated only on
  //       hosts with >= 8 hardware threads — standing timing policy);
  //   (b) overload burst: a load-shedding stream engine fed submissions far
  //       faster than its workers drain must refuse work at admission
  //       (shed > 0, always gated — the shed threshold is 2 against a
  //       burst of many ms-scale queries), answer every admitted query OK
  //       with drained + shed partitioning the burst exactly, and hold the
  //       admitted compute p95 <= 2x the uncontended p95 (floor gated
  //       >= 8 hw threads).
  bool robustness_ok = true;
  double nodeadline_qps = 0.0;
  double deadline_qps = 0.0;
  bool robustness_gated = false;
  size_t burst_submitted = 0;
  uint64_t burst_shed = 0;
  size_t burst_admitted = 0;
  double uncontended_p95_ms = 0.0;
  double burst_p95_ms = 0.0;
  {
    const unsigned hardware = std::thread::hardware_concurrency();
    robustness_gated = hardware >= 8;

    // (a) Deadline-machinery overhead, best of 3 fresh-engine runs (cache
    // off so every query pays the polled compute path).
    std::vector<EngineResult> nodeadline_reference;
    for (const bool deadline : {false, true}) {
      double& best = deadline ? deadline_qps : nodeadline_qps;
      for (int run = 0; run < 3; ++run) {
        EngineOptions options = base;
        options.num_threads = max_threads;
        options.enable_cache = false;
        if (deadline) options.default_deadline_ms = 60'000.0;
        auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                    "QueryEngine::Create(deadline)");
        Timer wall;
        const std::vector<EngineResult> results =
            bench::Unwrap(engine->RunBatch(workload), "RunBatch(deadline)");
        const double qps =
            static_cast<double>(workload.size()) / wall.ElapsedSeconds();
        robustness_ok = robustness_ok && AllOk(results);
        best = std::max(best, qps);
        if (!deadline && run == 0) {
          nodeadline_reference = results;
        } else {
          robustness_ok =
              robustness_ok && BitIdentical(nodeadline_reference, results);
        }
      }
    }
    const double deadline_ratio =
        nodeadline_qps > 0.0 ? deadline_qps / nodeadline_qps : 0.0;
    if (robustness_gated) {
      robustness_ok = robustness_ok && deadline_ratio >= 0.95;
    }

    // (b) Overload burst on the stream path. Distinct sources so neither
    // the result cache nor single-flight coalescing absorbs the load.
    EngineOptions shed_options = base;
    shed_options.num_threads = max_threads;
    shed_options.num_samples = std::max(4000u, config.max_k);
    shed_options.enable_cache = false;
    shed_options.enable_sweep_cache = false;
    shed_options.enable_load_shedding = true;
    shed_options.shed_queue_depth = 2;
    const NodeId n = static_cast<NodeId>(dataset.graph.num_nodes());
    burst_submitted = static_cast<size_t>(8 * max_threads + 32);
    std::vector<EngineQuery> burst;
    burst.reserve(burst_submitted);
    for (size_t i = 0; i < burst_submitted; ++i) {
      const NodeId s = static_cast<NodeId>((i * 131) % n);
      NodeId t = static_cast<NodeId>((i * 197 + 61) % n);
      if (t == s) t = (t + 1) % n;
      burst.push_back(EngineQuery::St(s, t));
    }

    // Uncontended baseline: the same engine shape, one query in flight at a
    // time (Submit immediately Drained), so the p95 is pure compute.
    {
      auto engine =
          bench::Unwrap(QueryEngine::Create(dataset.graph, shed_options),
                        "QueryEngine::Create(uncontended)");
      const size_t paced = std::min<size_t>(burst.size(), 24);
      for (size_t i = 0; i < paced; ++i) {
        robustness_ok = robustness_ok && engine->Submit(burst[i]).ok();
        const std::vector<EngineResult> one =
            bench::Unwrap(engine->Drain(), "Drain(uncontended)");
        robustness_ok = robustness_ok && AllOk(one);
      }
      uncontended_p95_ms =
          static_cast<double>(engine->metrics()
                                  .GetHistogram("engine_query_latency_ns")
                                  ->Snapshot()
                                  .Quantile(0.95)) /
          1e6;
    }

    // The burst: every query submitted back-to-back. Submits cost
    // microseconds against millisecond queries, so the queue crosses the
    // shed threshold no matter the host's core count.
    {
      auto engine =
          bench::Unwrap(QueryEngine::Create(dataset.graph, shed_options),
                        "QueryEngine::Create(burst)");
      size_t refused = 0;
      for (const EngineQuery& query : burst) {
        const Status admit = engine->Submit(query);
        if (!admit.ok()) {
          // Shedding must speak kUnavailable with a retry hint — anything
          // else is a real failure.
          robustness_ok = robustness_ok &&
                          admit.code() == StatusCode::kUnavailable &&
                          admit.message().find("retry after") !=
                              std::string::npos;
          ++refused;
        }
      }
      const std::vector<EngineResult> admitted =
          bench::Unwrap(engine->Drain(), "Drain(burst)");
      const EngineStatsSnapshot snapshot = engine->StatsSnapshot();
      rows.emplace_back(
          StrFormat("%u threads, overload burst (load shedding)", max_threads),
          snapshot);
      burst_shed = snapshot.shed;
      burst_admitted = admitted.size();
      burst_p95_ms =
          static_cast<double>(engine->metrics()
                                  .GetHistogram("engine_query_latency_ns")
                                  ->Snapshot()
                                  .Quantile(0.95)) /
          1e6;
      robustness_ok = robustness_ok && AllOk(admitted);
      robustness_ok = robustness_ok && burst_shed > 0 &&
                      burst_shed == refused &&
                      burst_admitted + burst_shed == burst.size() &&
                      snapshot.queries == burst_admitted;
      if (robustness_gated && uncontended_p95_ms > 0.0) {
        robustness_ok =
            robustness_ok && burst_p95_ms <= 2.0 * uncontended_p95_ms;
      }
    }
    std::printf(
        "robustness gate: deadline-armed %.0f qps vs deadline-free %.0f qps "
        "(%.3fx, %s >= 0.95x), bit-identical; overload burst %zu submitted = "
        "%zu admitted + %llu shed, admitted p95 %.3f ms vs uncontended p95 "
        "%.3f ms (%s <= 2x): %s\n",
        deadline_qps, nodeadline_qps, deadline_ratio,
        robustness_gated ? "gated" : "reported only (host < 8 hw threads), not",
        burst_submitted, burst_admitted,
        static_cast<unsigned long long>(burst_shed), burst_p95_ms,
        uncontended_p95_ms, robustness_gated ? "gated" : "not gated",
        robustness_ok ? "pass" : "FAIL — ROBUSTNESS REGRESSED");
  }

  // Persistence gate: a published snapshot must make Create O(1) — the
  // BFS-Sharing index is mmapped instead of rebuilt — and a restarted
  // engine must serve yesterday's warm state. Four checks:
  //   (a) rebuild-from-source Create, best of 3 (the reference, and the
  //       first run's answers are the bit-identity reference);
  //   (b) the first persistent engine (empty dir) rebuilds, auto-publishes
  //       the snapshot, answers bit-identically, and journals its caches;
  //   (c) Create against the published snapshot, best of 3, must report
  //       snapshot_restored and run >= 10x faster than (a) — always gated:
  //       the ratio compares an O(1) map against an O(L*m) index build,
  //       so it holds on any host;
  //   (d) warm-restored engines at 1/2/8 threads replay > 0 result and
  //       sweep entries, serve the first query from the restored cache,
  //       and answer the whole mix bit-identically to (a).
  PersistGateResults persist;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path persist_dir =
        fs::temp_directory_path(ec) / "relcomp_bench_persist";
    fs::remove_all(persist_dir, ec);

    EngineOptions options = base;
    options.kind = EstimatorKind::kBfsSharing;
    options.num_threads = max_threads;
    options.num_samples = std::max(64u, std::min(256u, config.max_k));
    // An expensive index (L sampled worlds per edge) widens the rebuild-
    // vs-mmap margin: the mmap path never touches L at Create.
    options.factory.bfs_sharing.index_samples = std::max(4000u, config.max_k);
    options.enable_cache = true;
    options.persist_flush_seconds = 0.0;  // flushes are explicit below

    // The mix the warm restart must serve from its restored caches.
    std::vector<EngineQuery> mix;
    for (const ReliabilityQuery& pair : pairs) {
      if (mix.size() >= 24) break;
      mix.push_back(EngineQuery::TopK(pair.source, 5));
      mix.push_back(EngineQuery::ReliableSet(pair.source, 0.2));
      mix.push_back(EngineQuery::St(pair.source, pair.target));
    }

    // (a) Rebuild-from-source cold start; run 0 doubles as the reference.
    std::vector<EngineResult> persist_reference;
    for (int run = 0; run < 3; ++run) {
      Timer wall;
      auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                  "QueryEngine::Create(persist rebuild)");
      const double seconds = wall.ElapsedSeconds();
      persist.rebuild_best_s =
          run == 0 ? seconds : std::min(persist.rebuild_best_s, seconds);
      if (run == 0) {
        persist_reference =
            bench::Unwrap(engine->RunBatch(mix), "RunBatch(persist reference)");
        persist.ok = persist.ok && AllOk(persist_reference);
      }
    }

    // (b) Publish: rebuild into the empty dir, auto-snapshot, journal warm
    // state (the destructor adds a final flush).
    EngineOptions restart_options = options;
    restart_options.persist_dir = persist_dir.string();
    {
      auto engine =
          bench::Unwrap(QueryEngine::Create(dataset.graph, restart_options),
                        "QueryEngine::Create(persist publish)");
      persist.ok =
          persist.ok && !engine->warm_restore_report().snapshot_restored;
      const std::vector<EngineResult> results =
          bench::Unwrap(engine->RunBatch(mix), "RunBatch(persist publish)");
      persist.ok = persist.ok && AllOk(results) &&
                   BitIdentical(persist_reference, results);
      persist.ok = persist.ok && engine->FlushWarmState().ok();
    }

    // (c) Mmap cold start against the published snapshot, best of 3.
    for (int run = 0; run < 3; ++run) {
      Timer wall;
      auto engine =
          bench::Unwrap(QueryEngine::Create(dataset.graph, restart_options),
                        "QueryEngine::Create(persist mmap)");
      const double seconds = wall.ElapsedSeconds();
      persist.mmap_best_s =
          run == 0 ? seconds : std::min(persist.mmap_best_s, seconds);
      persist.ok =
          persist.ok && engine->warm_restore_report().snapshot_restored;
    }

    // (d) Warm-restored replay, 1/2/8 threads.
    for (const uint32_t threads : {1u, 2u, 8u}) {
      EngineOptions warm_options = restart_options;
      warm_options.num_threads = threads;
      auto engine =
          bench::Unwrap(QueryEngine::Create(dataset.graph, warm_options),
                        "QueryEngine::Create(persist warm)");
      const QueryEngine::WarmRestoreReport& report =
          engine->warm_restore_report();
      persist.ok = persist.ok && report.attempted && report.snapshot_restored;
      if (threads == 1) {
        persist.warm_results = report.result_entries;
        persist.warm_sweeps = report.sweep_entries;
        persist.warm_skipped = report.skipped;
      }
      const std::vector<EngineResult> results =
          bench::Unwrap(engine->RunBatch(mix), "RunBatch(persist warm)");
      persist.ok = persist.ok && AllOk(results) &&
                   BitIdentical(persist_reference, results);
      if (threads == 1) {
        persist.warm_first_query_hit =
            !results.empty() && results.front().cache_hit;
      }
      if (threads == 8) {
        rows.emplace_back("8 threads, warm-restored (persist)",
                          engine->StatsSnapshot());
      }
    }
    persist.ok = persist.ok && persist.warm_results > 0 &&
                 persist.warm_sweeps > 0 && persist.warm_first_query_hit &&
                 persist.speedup() >= 10.0;
    fs::remove_all(persist_dir, ec);

    std::printf(
        "persistence gate: rebuild cold start %.3f s vs mmap %.4f s "
        "(%.0fx, gated >= 10x); warm restore %llu results + %llu sweeps "
        "(%llu skipped), first query %s: %s\n",
        persist.rebuild_best_s, persist.mmap_best_s, persist.speedup(),
        static_cast<unsigned long long>(persist.warm_results),
        static_cast<unsigned long long>(persist.warm_sweeps),
        static_cast<unsigned long long>(persist.warm_skipped),
        persist.warm_first_query_hit ? "served from restored cache"
                                     : "NOT A CACHE HIT",
        persist.ok ? "pass" : "FAIL — PERSISTENCE REGRESSED");
  }

  bench::PrintTable(EngineStatsTable(rows), "engine_throughput");

  if (!stats_json_path.empty()) {
    FILE* stats_out = std::fopen(stats_json_path.c_str(), "w");
    if (stats_out == nullptr) {
      std::fprintf(stderr, "warning: cannot open %s for stats export\n",
                   stats_json_path.c_str());
    } else {
      std::fputs(stats_export.c_str(), stats_out);
      std::fputc('\n', stats_out);
      std::fclose(stats_out);
      std::printf("metrics scrape written to %s\n", stats_json_path.c_str());
    }
  }

  // Shared-index gate: Create at 8 threads must build the BFS Sharing index
  // exactly once, and the deduped footprint must equal ONE index (the old
  // per-replica path held eight copies).
  bool shared_index_ok = true;
  {
    constexpr uint32_t kGateThreads = 8;
    EngineOptions options = base;
    options.kind = EstimatorKind::kBfsSharing;
    options.num_threads = kGateThreads;
    options.factory.bfs_sharing.index_samples =
        std::max(64u, config.max_k);  // modest L: the gate is about count
    const uint64_t builds_before = BfsSharingIndex::BuildCount();
    Timer create_timer;
    auto engine = bench::Unwrap(QueryEngine::Create(dataset.graph, options),
                                "QueryEngine::Create(kBfsSharing)");
    const double create_seconds = create_timer.ElapsedSeconds();
    const uint64_t builds = BfsSharingIndex::BuildCount() - builds_before;
    const IndexMemoryReport report = engine->IndexMemory();
    auto single = bench::Unwrap(
        MakeEstimator(EstimatorKind::kBfsSharing, dataset.graph,
                      options.factory),
        "MakeEstimator(kBfsSharing)");
    const size_t one_index = single->IndexMemoryBytes();
    shared_index_ok = builds == 1 && report.shared_indexes == 1 &&
                      report.total_bytes() == one_index;
    std::printf(
        "\nBFS Sharing Create @ %u threads: %.3f s, index builds = %llu "
        "(want 1)\n"
        "index memory: %s shared once + %s replica-private = %s "
        "(per-replica baseline: %s)\n",
        kGateThreads, create_seconds,
        static_cast<unsigned long long>(builds),
        HumanBytes(report.shared_bytes).c_str(),
        HumanBytes(report.replica_bytes).c_str(),
        HumanBytes(report.total_bytes()).c_str(),
        HumanBytes(one_index * kGateThreads).c_str());
    std::printf("shared-index gate: %s\n",
                shared_index_ok ? "pass"
                                : "FAIL — INDEX BUILT PER REPLICA");
  }

  std::printf("bit-identical across configurations: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATED");
  if (qps_4threads > 0.0 && qps_1thread > 0.0) {
    std::printf("speedup 4 threads vs 1: %.2fx\n",
                qps_4threads / qps_1thread);
  }
  if (!json_path.empty()) {
    if (WriteJson(json_path, dataset.name, config, rows,
                  sweep_distinct_sources, sweep_snapshot, strata_snapshot,
                  strata_wall_1thread, strata_wall_8threads, untraced_qps,
                  traced_qps, std::thread::hardware_concurrency() >= 8,
                  storage_raw_bytes, storage_compact_bytes,
                  dataset.graph.num_edges(), storage_raw_qps,
                  storage_compact_qps, storage_gated, router_static_qps,
                  router_routed_qps, router_routed_k_avg,
                  router_snapshot.router_decisions,
                  router_snapshot.router_fallbacks, router_gated,
                  nodeadline_qps, deadline_qps, burst_submitted,
                  burst_admitted, burst_shed, uncontended_p95_ms, burst_p95_ms,
                  robustness_gated, persist, stages_json, identical,
                  shared_index_ok, mixed_ok, sweep_ok, strata_ok, trace_ok,
                  storage_ok, router_ok, robustness_ok)) {
      std::printf("JSON results written to %s\n", json_path.c_str());
    }
  }
  if (!persist_json_path.empty()) {
    if (WritePersistJson(persist_json_path, dataset.name, persist)) {
      std::printf("persistence JSON written to %s\n",
                  persist_json_path.c_str());
    }
  }
  return identical && shared_index_ok && mixed_ok && sweep_ok && strata_ok &&
                 trace_ok && storage_ok && router_ok && robustness_ok &&
                 persist.ok
             ? 0
             : 1;
}
