// Figure 17: sensitivity of RSS to the number of strata r, at K in
// {500, 1000} on the BioMine analogue. Findings: variance shrinks with r
// when K is below convergence (up to ~25% at r=50, K=500), flattens past
// r~50; running time is insensitive to r. The paper adopts r = 50.

#include "bench_util.h"

namespace relcomp {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  bench::PrintHeader(
      "Figure 17: sensitivity to the number of strata r (RSS)",
      "variance decreases with r (clearly so at under-converged K), running "
      "time is insensitive; r=50 is the default",
      config);
  ExperimentContext context(config);
  const DatasetId id = DatasetId::kBioMine;
  const auto* queries = bench::Unwrap(context.GetQueries(id), "queries");
  const Dataset* dataset = bench::Unwrap(context.GetDataset(id), "dataset");

  TextTable table({"K", "r", "Variance (x1e-4)", "Time (s)"});
  for (const uint32_t k : {500u, 1000u}) {
    for (const uint32_t r : {5u, 10u, 20u, 50u, 80u, 100u}) {
      RssOptions options;
      options.num_strata = r;
      RecursiveStratifiedEstimator rss(dataset->graph, options);
      const KPoint point = bench::Unwrap(
          MeasureAtK(rss, *queries, k, config.repeats, config.seed ^ (k + r)),
          "rss");
      table.AddRow({StrFormat("%u", k), StrFormat("%u", r),
                    bench::Fmt(point.avg_variance * 1e4, "%.3f"),
                    bench::Fmt(point.avg_query_seconds, "%.6f")});
    }
  }
  bench::PrintTable(table, "fig17_stratum");
  return 0;
}

}  // namespace
}  // namespace relcomp

int main() { return relcomp::Run(); }
